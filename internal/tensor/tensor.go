// Package tensor implements the minimal dense float32 linear algebra the
// transformer engine needs: row-major matrices, matrix multiplication,
// softmax, normalization layers and activations.
//
// The package is deliberately small and allocation-conscious rather than
// general: every routine used on the inference hot path has an in-place or
// destination-buffer form, because Prompt Cache's performance story is
// partly about avoiding avoidable copies (§4.2 of the paper overrides
// PyTorch's concatenation for the same reason).
//
// # Backends
//
// The hot-path kernels are additionally exposed through the Backend
// interface, the unit of hardware specialization: "scalar" is the
// single-threaded reference, "parallel" tiles the same arithmetic across
// goroutines (matrix rows, output-head vocab ranges, attention
// (token, head) pairs, MatVecT output columns). Backends are
// bit-identical by contract — parallelism only ever crosses independent
// output elements, never a reduction — so golden-logits tests and
// cross-machine cache reuse hold under any backend. Select maps names to
// instances; Auto picks per the host (and the PC_BACKEND environment
// variable).
package tensor

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// Matrix is a dense row-major float32 matrix with Rows x Cols elements.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// NewMatrix allocates a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (not copied) as a Rows x Cols matrix.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Row returns a view of row i (no copy).
func (m *Matrix) Row(i int) []float32 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set sets element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// SliceRows returns a view of rows [lo, hi).
func (m *Matrix) SliceRows(lo, hi int) *Matrix {
	if lo < 0 || hi > m.Rows || lo > hi {
		panic(fmt.Sprintf("tensor: SliceRows[%d:%d) of %d rows", lo, hi, m.Rows))
	}
	return &Matrix{Rows: hi - lo, Cols: m.Cols, Data: m.Data[lo*m.Cols : hi*m.Cols]}
}

// matmulParallelThreshold is the output-element count above which MatMul
// fans work out across GOMAXPROCS goroutines.
const matmulParallelThreshold = 64 * 64

// MatMul computes dst = a × b where a is (n×k) and b is (k×m).
// dst must be (n×m) and must not alias a or b.
func MatMul(dst, a, b *Matrix) {
	checkMatMul(dst, a, b)
	if a.Rows*b.Cols >= matmulParallelThreshold {
		matMulParallel(dst, a, b)
		return
	}
	matMulRange(dst, a, b, 0, a.Rows)
}

func checkMatMul(dst, a, b *Matrix) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
}

// matMulRange computes rows [lo, hi) of dst = a×b with a k-blocked inner
// loop (i-k-j order) that keeps b's rows streaming through cache.
func matMulRange(dst, a, b *Matrix, lo, hi int) {
	n, k, m := a.Rows, a.Cols, b.Cols
	_ = n
	for i := lo; i < hi; i++ {
		out := dst.Data[i*m : (i+1)*m]
		for j := range out {
			out[j] = 0
		}
		arow := a.Data[i*k : (i+1)*k]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*m : (p+1)*m]
			for j, bv := range brow {
				out[j] += av * bv
			}
		}
	}
}

func matMulParallel(dst, a, b *Matrix) {
	workers := runtime.GOMAXPROCS(0)
	if workers > a.Rows {
		workers = a.Rows
	}
	if workers <= 1 {
		matMulRange(dst, a, b, 0, a.Rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (a.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > a.Rows {
			hi = a.Rows
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRange(dst, a, b, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatVec computes dst = m × v for a (rows×cols) matrix and len-cols vector.
func MatVec(dst []float32, m *Matrix, v []float32) {
	if len(v) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("tensor: MatVec shapes m=%dx%d v=%d dst=%d", m.Rows, m.Cols, len(v), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot(m.Row(i), v)
	}
}

// MatVecT computes dst = Wᵀ·h for W stored as (in × out):
// dst[j] = Σ_i W[i][j] · h[i]. Walking W row-major keeps the weight
// matrix streaming through cache while h stays resident.
func MatVecT(dst []float32, w *Matrix, h []float32) {
	checkMatVecT(dst, w, h)
	matVecTRange(dst, w, h, 0, w.Cols)
}

func checkMatVecT(dst []float32, w *Matrix, h []float32) {
	if len(h) != w.Rows || len(dst) != w.Cols {
		panic(fmt.Sprintf("tensor: MatVecT shapes W=%dx%d h=%d dst=%d", w.Rows, w.Cols, len(h), len(dst)))
	}
}

// matVecTRange computes dst[j] = Σ_i W[i][j]·h[i] for columns
// j in [lo, hi). Each column accumulates over i ascending with the
// h[i] == 0 skip, so any column partition yields identical bits.
func matVecTRange(dst []float32, w *Matrix, h []float32, lo, hi int) {
	out := dst[lo:hi]
	for j := range out {
		out[j] = 0
	}
	for i, hv := range h {
		if hv == 0 {
			continue
		}
		row := w.Row(i)[lo:hi]
		for j, wv := range row {
			out[j] += hv * wv
		}
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float32
	for i, av := range a {
		s += av * b[i]
	}
	return s
}

// Dot2 computes a·b0 and a·b1 in a single pass over a. Each sum
// accumulates in exactly the order Dot(a, bK) would, so the results are
// bit-identical to two solo calls; sharing the walk loads each element
// of a once for both sums — the inner kernel of the batched-decode
// output head.
func Dot2(a, b0, b1 []float32) (float32, float32) {
	if len(b0) != len(a) || len(b1) != len(a) {
		panic(fmt.Sprintf("tensor: Dot2 length mismatch %d/%d vs %d", len(b0), len(b1), len(a)))
	}
	b0, b1 = b0[:len(a)], b1[:len(a)]
	var s0, s1 float32
	for i, av := range a {
		s0 += av * b0[i]
		s1 += av * b1[i]
	}
	return s0, s1
}

// Dot4 is Dot2 over four right-hand sides: one pass over a, four
// bit-identical sums.
func Dot4(a, b0, b1, b2, b3 []float32) (float32, float32, float32, float32) {
	if len(b0) != len(a) || len(b1) != len(a) || len(b2) != len(a) || len(b3) != len(a) {
		panic(fmt.Sprintf("tensor: Dot4 length mismatch vs %d", len(a)))
	}
	b0, b1, b2, b3 = b0[:len(a)], b1[:len(a)], b2[:len(a)], b3[:len(a)]
	var s0, s1, s2, s3 float32
	for i, av := range a {
		s0 += av * b0[i]
		s1 += av * b1[i]
		s2 += av * b2[i]
		s3 += av * b3[i]
	}
	return s0, s1, s2, s3
}

// Add computes dst[i] += src[i].
func Add(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: Add length mismatch")
	}
	for i, v := range src {
		dst[i] += v
	}
}

// Mul computes dst[i] *= src[i].
func Mul(dst, src []float32) {
	if len(dst) != len(src) {
		panic("tensor: Mul length mismatch")
	}
	for i, v := range src {
		dst[i] *= v
	}
}

// Scale multiplies every element of dst by s.
func Scale(dst []float32, s float32) {
	for i := range dst {
		dst[i] *= s
	}
}

// Softmax normalizes x in place into a probability distribution,
// subtracting the max first for numerical stability.
func Softmax(x []float32) {
	if len(x) == 0 {
		return
	}
	maxv := x[0]
	for _, v := range x[1:] {
		if v > maxv {
			maxv = v
		}
	}
	var sum float32
	for i, v := range x {
		e := float32(math.Exp(float64(v - maxv)))
		x[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range x {
		x[i] *= inv
	}
}

// RMSNorm writes RMS-normalized x scaled by weight into dst
// (dst = x / rms(x) * w), the normalization used by Llama-family models.
func RMSNorm(dst, x, weight []float32, eps float32) {
	if len(dst) != len(x) || len(x) != len(weight) {
		panic("tensor: RMSNorm length mismatch")
	}
	var ss float64
	for _, v := range x {
		ss += float64(v) * float64(v)
	}
	inv := float32(1 / math.Sqrt(ss/float64(len(x))+float64(eps)))
	for i, v := range x {
		dst[i] = v * inv * weight[i]
	}
}

// LayerNorm writes layer-normalized x scaled by gamma and shifted by beta
// into dst, the normalization used by MPT/GPT-family models.
func LayerNorm(dst, x, gamma, beta []float32, eps float32) {
	if len(dst) != len(x) || len(x) != len(gamma) || len(x) != len(beta) {
		panic("tensor: LayerNorm length mismatch")
	}
	var mean float64
	for _, v := range x {
		mean += float64(v)
	}
	mean /= float64(len(x))
	var variance float64
	for _, v := range x {
		d := float64(v) - mean
		variance += d * d
	}
	variance /= float64(len(x))
	inv := float32(1 / math.Sqrt(variance+float64(eps)))
	for i, v := range x {
		dst[i] = (v-float32(mean))*inv*gamma[i] + beta[i]
	}
}

// SiLU applies x*sigmoid(x) elementwise in place (Llama FFN activation).
func SiLU(x []float32) {
	for i, v := range x {
		x[i] = v / (1 + float32(math.Exp(float64(-v))))
	}
}

// GELU applies the tanh-approximated Gaussian error linear unit in place
// (GPT/MPT FFN activation).
func GELU(x []float32) {
	const c = 0.7978845608028654 // sqrt(2/pi)
	for i, v := range x {
		v64 := float64(v)
		x[i] = float32(0.5 * v64 * (1 + math.Tanh(c*(v64+0.044715*v64*v64*v64))))
	}
}

// ArgMax returns the index of the largest element, breaking ties toward
// the lower index. It panics on an empty slice.
func ArgMax(x []float32) int {
	if len(x) == 0 {
		panic("tensor: ArgMax of empty slice")
	}
	best, bi := x[0], 0
	for i, v := range x[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// MaxAbsDiff returns max_i |a[i]-b[i]|; a convenience for numerical
// equivalence assertions in tests and benchmarks.
func MaxAbsDiff(a, b []float32) float32 {
	if len(a) != len(b) {
		panic("tensor: MaxAbsDiff length mismatch")
	}
	var m float32
	for i, av := range a {
		d := av - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// CosineSimilarity returns the cosine of the angle between a and b, or 0
// if either has zero norm.
func CosineSimilarity(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("tensor: CosineSimilarity length mismatch")
	}
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}
