package tensor

import "sync"

// Work thresholds (in multiply-adds) below which the parallel backend
// stays sequential: a goroutine spawn+join costs on the order of
// microseconds, so every shard must carry enough arithmetic to amortize
// it. matmulParallelThreshold (tensor.go) plays the same role for
// MatMul, counted in output elements as the package-level entry always
// has.
const (
	// matVecTParallelThreshold gates column-sharding of dst = Wᵀ·h.
	matVecTParallelThreshold = 32 * 1024
	// outputHeadParallelThreshold gates vocab-sharding of the output
	// head (vocab × dim × lanes). Decode calls it once per generated
	// token, so the bar sits where logitsInto's historically did.
	outputHeadParallelThreshold = 32 * 1024
	// attendParallelThreshold gates (token, head)-sharding of an
	// attention row block, counted as score+combine multiply-adds.
	attendParallelThreshold = 32 * 1024
)

// parallelBackend tiles the scalar kernels across goroutines. The
// tiling is always across independent output elements — matrix rows,
// output-head vocab ranges, (token, head) attention pairs — never
// inside a reduction, so every element is produced by the exact scalar
// code (attendPairs, matMulRange, matVecTRange, outputHeadRange) and
// results are bit-identical to the scalar backend on every input.
// Elementwise kernels and the dot-product family are inherited from
// the embedded scalar reference unchanged.
type parallelBackend struct {
	scalarBackend
	workers int
}

func (*parallelBackend) Name() string { return "parallel" }

func (p *parallelBackend) Workers() int { return p.workers }

// shard runs fn over [0, n) split into contiguous ranges across at most
// workers goroutines (one range per worker, the last possibly short).
// workers <= 1 or n <= 1 runs inline.
func shard(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// boundedWorkers caps the fan-out so each shard carries at least
// minWork multiply-adds of the given total.
func boundedWorkers(workers, totalWork, minWork int) int {
	if totalWork < minWork || workers <= 1 {
		return 1
	}
	if maxW := totalWork / minWork; workers > maxW {
		workers = maxW
	}
	return workers
}

func (p *parallelBackend) MatMul(dst, a, b *Matrix) {
	checkMatMul(dst, a, b)
	if a.Rows*b.Cols < matmulParallelThreshold {
		matMulRange(dst, a, b, 0, a.Rows)
		return
	}
	shard(a.Rows, p.workers, func(lo, hi int) { matMulRange(dst, a, b, lo, hi) })
}

func (p *parallelBackend) MatVecT(dst []float32, w *Matrix, h []float32) {
	checkMatVecT(dst, w, h)
	workers := boundedWorkers(p.workers, w.Rows*w.Cols, matVecTParallelThreshold)
	if workers <= 1 {
		matVecTRange(dst, w, h, 0, w.Cols)
		return
	}
	// Column shards: each worker owns dst[lo:hi], and every column's
	// accumulation still walks rows i ascending with the hv == 0 skip —
	// the shard boundary slices the output, never the reduction.
	shard(w.Cols, workers, func(lo, hi int) { matVecTRange(dst, w, h, lo, hi) })
}

func (p *parallelBackend) OutputHead(dsts [][]float32, emb *Matrix, hs [][]float32) {
	if len(hs) == 0 {
		return
	}
	checkOutputHead(dsts, emb, hs)
	workers := boundedWorkers(p.workers, emb.Rows*emb.Cols*len(hs), outputHeadParallelThreshold)
	shard(emb.Rows, workers, func(lo, hi int) { outputHeadRange(dsts, emb, hs, lo, hi) })
}

// attendScores pools per-worker score buffers for sharded attention;
// the caller-provided scratch only serves the sequential path.
var attendScores = sync.Pool{New: func() any { return new([]float32) }}

func (p *parallelBackend) AttendRowBlock(a *AttendArgs) {
	checkAttendArgs(a)
	n, pairs := a.Q.Rows, a.Q.Rows*a.NHeads
	// Score + combine work across the block: token i touches Past+i+1
	// rows twice per head, HeadDim wide.
	rowSum := n*a.Past + n*(n+1)/2
	workers := boundedWorkers(p.workers, 2*rowSum*a.HeadDim*a.NHeads, attendParallelThreshold)
	if workers <= 1 {
		attendPairs(a, a.Scores, 0, pairs)
		return
	}
	maxRows := a.Past + n
	shard(pairs, workers, func(lo, hi int) {
		buf := attendScores.Get().(*[]float32)
		if cap(*buf) < maxRows {
			*buf = make([]float32, maxRows)
		}
		attendPairs(a, (*buf)[:maxRows], lo, hi)
		attendScores.Put(buf)
	})
}
