package tensor

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/rng"
)

// The backend contract is bit-identity, so every comparison in this file
// is math.Float32bits equality — a one-ulp difference is a failure, not
// noise. Shapes deliberately include odd and tiny dimensions, where
// sharding boundaries (chunk remainders, workers > elements) are most
// likely to misalign.

// bitsEqual reports the first elementwise bit mismatch, if any.
func bitsEqual(a, b []float32) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return i, false
		}
	}
	return 0, true
}

// challengers are the non-reference backends under test: varied worker
// counts exercise chunk remainders (3 workers over odd sizes) and the
// degenerate 1-worker schedule.
func challengers() []Backend {
	return []Backend{NewParallel(4), NewParallel(3), NewParallel(1)}
}

// fillSigned fills data with a deterministic mix of normals and exact
// zeros: the kernels' v == 0 skips are part of the accumulation
// contract, so inputs must actually hit them.
func fillSigned(r *rng.RNG, data []float32) {
	r.FillNormal(data, 1)
	for i := range data {
		if r.Intn(8) == 0 {
			data[i] = 0
		}
	}
}

func TestBackendsBitIdenticalMatMul(t *testing.T) {
	r := rng.NewString("backend/matmul")
	shapes := [][3]int{{1, 1, 1}, {3, 5, 7}, {17, 13, 1}, {80, 96, 80}, {65, 33, 129}}
	for _, sh := range shapes {
		n, k, mm := sh[0], sh[1], sh[2]
		a, b := NewMatrix(n, k), NewMatrix(k, mm)
		fillSigned(r, a.Data)
		fillSigned(r, b.Data)
		want := NewMatrix(n, mm)
		Scalar().MatMul(want, a, b)
		for _, bk := range challengers() {
			got := NewMatrix(n, mm)
			bk.MatMul(got, a, b)
			if i, ok := bitsEqual(want.Data, got.Data); !ok {
				t.Fatalf("MatMul %dx%dx%d workers=%d: bit mismatch at %d", n, k, mm, bk.Workers(), i)
			}
		}
	}
}

func TestBackendsBitIdenticalMatVecT(t *testing.T) {
	r := rng.NewString("backend/matvect")
	shapes := [][2]int{{1, 1}, {7, 3}, {64, 65}, {257, 129}, {512, 384}}
	for _, sh := range shapes {
		in, out := sh[0], sh[1]
		w := NewMatrix(in, out)
		h := make([]float32, in)
		fillSigned(r, w.Data)
		fillSigned(r, h)
		want := make([]float32, out)
		Scalar().MatVecT(want, w, h)
		for _, bk := range challengers() {
			got := make([]float32, out)
			bk.MatVecT(got, w, h)
			if i, ok := bitsEqual(want, got); !ok {
				t.Fatalf("MatVecT %dx%d workers=%d: bit mismatch at %d", in, out, bk.Workers(), i)
			}
		}
	}
}

func TestBackendsBitIdenticalOutputHead(t *testing.T) {
	r := rng.NewString("backend/outputhead")
	for _, lanes := range []int{1, 2, 3, 4, 5, 7} {
		vocab, dim := 301, 33
		emb := NewMatrix(vocab, dim)
		fillSigned(r, emb.Data)
		hs := make([][]float32, lanes)
		want := make([][]float32, lanes)
		got := make([][]float32, lanes)
		for k := range hs {
			hs[k] = make([]float32, dim)
			fillSigned(r, hs[k])
			want[k] = make([]float32, vocab)
			got[k] = make([]float32, vocab)
		}
		Scalar().OutputHead(want, emb, hs)
		for _, bk := range challengers() {
			for k := range got {
				clear(got[k])
			}
			bk.OutputHead(got, emb, hs)
			for k := range want {
				if i, ok := bitsEqual(want[k], got[k]); !ok {
					t.Fatalf("OutputHead lanes=%d workers=%d: lane %d bit mismatch at %d", lanes, bk.Workers(), k, i)
				}
			}
		}
	}
}

// buildAttend builds a deterministic attention block: n query tokens
// over past+n cached rows split into spans, optionally with ALiBi
// slopes, with position gaps so the explicit-position path is exercised.
func buildAttend(r *rng.RNG, n, past, nHeads, group, headDim int, alibi bool) *AttendArgs {
	width := (nHeads / group) * headDim
	rows := past + n
	q := NewMatrix(n, nHeads*headDim)
	out := NewMatrix(n, nHeads*headDim)
	fillSigned(r, q.Data)

	// Split the KV rows into 1–3 spans at arbitrary boundaries.
	bounds := []int{rows}
	if rows > 2 {
		bounds = []int{1 + r.Intn(rows-1), rows}
	}
	var spans []Span
	pos := 0
	row := 0
	for _, b := range bounds {
		cnt := b - row
		if cnt <= 0 {
			continue
		}
		sp := Span{K: make([]float32, cnt*width), V: make([]float32, cnt*width), Pos: make([]int, cnt)}
		fillSigned(r, sp.K)
		fillSigned(r, sp.V)
		for j := range sp.Pos {
			pos += 1 + r.Intn(3) // gaps: positions are explicit, not dense
			sp.Pos[j] = pos
		}
		spans = append(spans, sp)
		row = b
	}
	positions := make([]int, n)
	last := spans[len(spans)-1]
	for i := range positions {
		positions[i] = last.Pos[len(last.Pos)-1] + i // query rows are the tail of the cache
	}
	var slopes []float32
	if alibi {
		slopes = make([]float32, nHeads)
		for i := range slopes {
			slopes[i] = float32(math.Pow(2, -float64(i+1)))
		}
	}
	return &AttendArgs{
		Q: q, Out: out, Spans: spans, Past: past, Positions: positions,
		NHeads: nHeads, Group: group, HeadDim: headDim, Width: width,
		InvSqrt:     float32(1 / math.Sqrt(float64(headDim))),
		AlibiSlopes: slopes, Scores: make([]float32, rows),
	}
}

func TestBackendsBitIdenticalAttend(t *testing.T) {
	r := rng.NewString("backend/attend")
	cases := []struct {
		n, past, nHeads, group, headDim int
		alibi                           bool
	}{
		{1, 0, 1, 1, 4, false},
		{1, 7, 4, 2, 8, false},
		{3, 5, 4, 1, 4, true},
		{16, 33, 4, 2, 16, false},
		{5, 64, 6, 3, 8, true},
	}
	for _, c := range cases {
		a := buildAttend(r, c.n, c.past, c.nHeads, c.group, c.headDim, c.alibi)
		Scalar().AttendRowBlock(a)
		want := append([]float32(nil), a.Out.Data...)
		for _, bk := range challengers() {
			clear(a.Out.Data)
			bk.AttendRowBlock(a)
			if i, ok := bitsEqual(want, a.Out.Data); !ok {
				t.Fatalf("Attend %+v workers=%d: bit mismatch at %d", c, bk.Workers(), i)
			}
		}
	}
}

func TestSelect(t *testing.T) {
	for _, name := range Backends() {
		bk, err := Select(name)
		if err != nil {
			t.Fatalf("Select(%q): %v", name, err)
		}
		if bk.Name() != name {
			t.Fatalf("Select(%q).Name() = %q", name, bk.Name())
		}
	}
	for _, name := range []string{"", "auto"} {
		if _, err := Select(name); err != nil {
			t.Fatalf("Select(%q): %v", name, err)
		}
	}
	if _, err := Select("cuda"); err == nil {
		t.Fatal("Select(cuda) should fail")
	}
}

func TestAutoHonorsEnv(t *testing.T) {
	t.Setenv("PC_BACKEND", "scalar")
	if got := Auto().Name(); got != "scalar" {
		t.Fatalf("Auto() under PC_BACKEND=scalar = %q", got)
	}
	t.Setenv("PC_BACKEND", "parallel")
	if got := Auto().Name(); got != "parallel" {
		t.Fatalf("Auto() under PC_BACKEND=parallel = %q", got)
	}
}

// FuzzBackendKernels drives MatVecT and OutputHead across fuzzer-chosen
// shapes and worker counts, asserting bit-identity against the scalar
// reference. The corpus seeds cover the shard-boundary hazards (odd
// sizes, more workers than elements).
func FuzzBackendKernels(f *testing.F) {
	f.Add(uint64(1), 7, 3, 2, 4)
	f.Add(uint64(2), 1, 1, 1, 1)
	f.Add(uint64(3), 65, 129, 3, 8)
	f.Add(uint64(4), 16, 512, 2, 3)
	f.Fuzz(func(t *testing.T, seed uint64, in, out, lanes, workers int) {
		if in < 1 || in > 512 || out < 1 || out > 512 || lanes < 1 || lanes > 8 || workers < 1 || workers > 16 {
			t.Skip()
		}
		r := rng.NewString(fmt.Sprintf("fuzz/%d/%d/%d/%d/%d", seed, in, out, lanes, workers))
		bk := NewParallel(workers)

		w := NewMatrix(in, out)
		h := make([]float32, in)
		fillSigned(r, w.Data)
		fillSigned(r, h)
		want := make([]float32, out)
		got := make([]float32, out)
		Scalar().MatVecT(want, w, h)
		bk.MatVecT(got, w, h)
		if i, ok := bitsEqual(want, got); !ok {
			t.Fatalf("MatVecT %dx%d workers=%d: bit mismatch at %d", in, out, workers, i)
		}

		emb := NewMatrix(out, in) // vocab=out, dim=in
		fillSigned(r, emb.Data)
		hs := make([][]float32, lanes)
		wantL := make([][]float32, lanes)
		gotL := make([][]float32, lanes)
		for k := range hs {
			hs[k] = make([]float32, in)
			fillSigned(r, hs[k])
			wantL[k] = make([]float32, out)
			gotL[k] = make([]float32, out)
		}
		Scalar().OutputHead(wantL, emb, hs)
		bk.OutputHead(gotL, emb, hs)
		for k := range wantL {
			if i, ok := bitsEqual(wantL[k], gotL[k]); !ok {
				t.Fatalf("OutputHead lane %d workers=%d: bit mismatch at %d", k, workers, i)
			}
		}
	})
}
