// Package pml implements the Prompt Markup Language of §3.2: schemas that
// declare reusable prompt modules (with parameters, unions, nesting, and
// chat-template tags) and prompts derived from those schemas that import
// modules, supply parameter arguments, and add new text.
//
// The package owns parsing, validation, and the position-ID layout solver
// (§3.3): given a tokenizer, it assigns every module an absolute start
// position and length, with union members sharing a start sized by the
// largest child. The core package consumes the compiled layout to encode
// and reuse attention states.
package pml

import "fmt"

// Role identifies LLM-specific chat-template tags (§3.2.3).
type Role int

const (
	// RoleNone marks plain text.
	RoleNone Role = iota
	// RoleSystem marks <system> content.
	RoleSystem
	// RoleUser marks <user> content.
	RoleUser
	// RoleAssistant marks <assistant> content.
	RoleAssistant
)

func (r Role) String() string {
	switch r {
	case RoleSystem:
		return "system"
	case RoleUser:
		return "user"
	case RoleAssistant:
		return "assistant"
	default:
		return "none"
	}
}

// Node is a schema AST node: *Text, *Param, *Module, or *Union.
type Node interface{ nodeKind() string }

// Text is literal schema text, possibly wrapped in a chat-template role
// tag. Text outside any <module> is an anonymous module, always included
// in derived prompts (§3.2.1).
type Text struct {
	Content string
	Role    Role
}

func (*Text) nodeKind() string { return "text" }

// Param is a named placeholder inside a module (§3.2.2). Len is the
// maximum number of tokens an argument may occupy; at encode time the
// slot is filled with <unk> tokens.
type Param struct {
	Name string
	Len  int
}

func (*Param) nodeKind() string { return "param" }

// Module is a named reusable text segment. Children may be *Text, *Param,
// nested *Module, or *Union nodes, in document order.
type Module struct {
	Name  string
	Nodes []Node
}

func (*Module) nodeKind() string { return "module" }

// Union is a set of mutually exclusive modules sharing a start position
// (§3.2.3); at most one member may be imported by a prompt.
type Union struct {
	Members []*Module
}

func (*Union) nodeKind() string { return "union" }

// Scaffold names a set of modules that are additionally encoded together
// with a shared attention span (§3.3). When a prompt imports every module
// of a scaffold, the co-encoded states override the individual ones.
type Scaffold struct {
	Name    string
	Modules []string
}

// Schema is a parsed PML schema document.
type Schema struct {
	Name      string
	Nodes     []Node
	Scaffolds []Scaffold
}

// Prompt is a parsed PML prompt document derived from a schema.
type Prompt struct {
	SchemaName string
	Items      []PromptItem
}

// PromptItem is a prompt AST node: *Import or *PromptText.
type PromptItem interface{ promptKind() string }

// Import brings a schema module's cached states into the prompt. Args
// supplies parameter values by name; Children are imports of nested
// modules.
type Import struct {
	Name     string
	Args     map[string]string
	Children []PromptItem
}

func (*Import) promptKind() string { return "import" }

// PromptText is new, uncached text in a prompt, possibly role-wrapped.
type PromptText struct {
	Content string
	Role    Role
}

func (*PromptText) promptKind() string { return "text" }

// ParseError reports a syntax or validation error with position info.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("pml: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) *ParseError {
	return &ParseError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
