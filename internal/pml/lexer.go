package pml

import (
	"strings"
	"unicode"
)

// tokKind enumerates lexer token kinds.
type tokKind int

const (
	tokText     tokKind = iota // raw character data
	tokOpenTag                 // <name attr="v">
	tokCloseTag                // </name>
	tokSelfTag                 // <name attr="v"/>
	tokEOF
)

// tok is one lexical token.
type tok struct {
	kind      tokKind
	text      string            // tokText: raw content
	name      string            // tag name
	attrs     map[string]string // tag attributes in document order
	line, col int
}

// lexer splits a PML document into text and tag tokens. PML is an XML-like
// surface syntax but deliberately smaller: no processing instructions, no
// CDATA, no entities except &lt; &gt; &amp; &quot;.
type lexer struct {
	src       string
	off       int
	line, col int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) advance(n int) {
	for i := 0; i < n; i++ {
		if lx.src[lx.off+i] == '\n' {
			lx.line++
			lx.col = 1
		} else {
			lx.col++
		}
	}
	lx.off += n
}

func (lx *lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func unescape(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	r := strings.NewReplacer("&lt;", "<", "&gt;", ">", "&quot;", `"`, "&amp;", "&")
	return r.Replace(s)
}

// next returns the next token.
func (lx *lexer) next() (tok, error) {
	if lx.off >= len(lx.src) {
		return tok{kind: tokEOF, line: lx.line, col: lx.col}, nil
	}
	startLine, startCol := lx.line, lx.col
	if lx.peek() != '<' {
		// Text run until next '<' or EOF.
		end := strings.IndexByte(lx.src[lx.off:], '<')
		if end < 0 {
			end = len(lx.src) - lx.off
		}
		raw := lx.src[lx.off : lx.off+end]
		lx.advance(end)
		return tok{kind: tokText, text: unescape(raw), line: startLine, col: startCol}, nil
	}
	// Tag.
	rest := lx.src[lx.off:]
	gt := strings.IndexByte(rest, '>')
	if gt < 0 {
		return tok{}, errAt(startLine, startCol, "unterminated tag")
	}
	inner := rest[1:gt] // between < and >
	lx.advance(gt + 1)

	closing := strings.HasPrefix(inner, "/")
	if closing {
		name := strings.TrimSpace(inner[1:])
		if !validTagName(name) {
			return tok{}, errAt(startLine, startCol, "bad closing tag name %q", name)
		}
		return tok{kind: tokCloseTag, name: name, line: startLine, col: startCol}, nil
	}
	selfClose := strings.HasSuffix(inner, "/")
	if selfClose {
		inner = inner[:len(inner)-1]
	}
	name, attrs, err := parseTagBody(inner, startLine, startCol)
	if err != nil {
		return tok{}, err
	}
	k := tokOpenTag
	if selfClose {
		k = tokSelfTag
	}
	return tok{kind: k, name: name, attrs: attrs, line: startLine, col: startCol}, nil
}

// validTagName accepts XML-ish names: letters, digits, '-', '_', '.',
// starting with a letter or underscore.
func validTagName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if unicode.IsLetter(r) || r == '_' {
			continue
		}
		if i > 0 && (unicode.IsDigit(r) || r == '-' || r == '.') {
			continue
		}
		return false
	}
	return true
}

// parseTagBody parses `name attr="v" attr2="v2"`.
func parseTagBody(s string, line, col int) (string, map[string]string, error) {
	s = strings.TrimSpace(s)
	i := 0
	for i < len(s) && !unicode.IsSpace(rune(s[i])) {
		i++
	}
	name := s[:i]
	if !validTagName(name) {
		return "", nil, errAt(line, col, "bad tag name %q", name)
	}
	attrs := map[string]string{}
	rest := strings.TrimSpace(s[i:])
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return "", nil, errAt(line, col, "attribute without value in <%s>", name)
		}
		key := strings.TrimSpace(rest[:eq])
		if !validTagName(key) {
			return "", nil, errAt(line, col, "bad attribute name %q in <%s>", key, name)
		}
		v := strings.TrimSpace(rest[eq+1:])
		if len(v) < 2 || v[0] != '"' {
			return "", nil, errAt(line, col, "attribute %s in <%s> must be double-quoted", key, name)
		}
		endQ := strings.IndexByte(v[1:], '"')
		if endQ < 0 {
			return "", nil, errAt(line, col, "unterminated attribute value for %s in <%s>", key, name)
		}
		if _, dup := attrs[key]; dup {
			return "", nil, errAt(line, col, "duplicate attribute %s in <%s>", key, name)
		}
		attrs[key] = unescape(v[1 : 1+endQ])
		rest = strings.TrimSpace(v[1+endQ+1:])
	}
	return name, attrs, nil
}
