package pml

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/tokenizer"
)

// TestParserNeverPanicsOnRandomInput: arbitrary byte soup must yield an
// error or a schema — never a panic.
func TestParserNeverPanicsOnRandomInput(t *testing.T) {
	check := func(s string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("ParseSchema panicked on %q: %v", s, r)
			}
		}()
		_, _ = ParseSchema(s)
		_, _ = ParsePrompt(s)
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParserNeverPanicsOnMangledSchemas: start from a valid schema and
// apply random mutations (truncation, byte flips, tag splicing).
func TestParserNeverPanicsOnMangledSchemas(t *testing.T) {
	base := `<schema name="s">
	  intro text
	  <module name="m"><param name="p" len="3"/> body</module>
	  <union><module name="a">x</module><module name="b">y</module></union>
	  <scaffold name="sc" modules="m a"/>
	</schema>`
	r := rng.New(404)
	for i := 0; i < 800; i++ {
		b := []byte(base)
		switch r.Intn(4) {
		case 0: // truncate
			b = b[:r.Intn(len(b))]
		case 1: // flip a byte
			if len(b) > 0 {
				b[r.Intn(len(b))] = byte(r.Intn(256))
			}
		case 2: // duplicate a slice
			lo := r.Intn(len(b))
			hi := lo + r.Intn(len(b)-lo)
			b = append(b[:hi:hi], append([]byte(string(b[lo:hi])), b[hi:]...)...)
		case 3: // splice a random tag
			frag := []string{"<union>", "</module>", "<param/>", "<prompt>", "&lt;", `name="`}[r.Intn(6)]
			pos := r.Intn(len(b))
			b = append(b[:pos:pos], append([]byte(frag), b[pos:]...)...)
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic on mangled input %q: %v", string(b), rec)
				}
			}()
			if s, err := ParseSchema(string(b)); err == nil {
				// Anything that parses must also compile and serialize.
				tk := tokenizer.New(tokenizer.WordBase + 4096)
				if _, cerr := Compile(s, tk, PlainTemplate()); cerr != nil {
					t.Fatalf("parsed but uncompilable: %v", cerr)
				}
				if _, perr := ParseSchema(Serialize(s)); perr != nil {
					t.Fatalf("parsed but unserializable: %v", perr)
				}
			}
		}()
	}
}

// TestSerializeEscapesHostileContent: text containing PML metacharacters
// survives a serialize→parse round trip with content intact.
func TestSerializeEscapesHostileContent(t *testing.T) {
	hostile := []string{
		`a < b`, `x & y`, `quote " inside`, `</module>`, `<union>`, `tag<param`,
	}
	for _, content := range hostile {
		s := &Schema{Name: "h", Nodes: []Node{
			&Module{Name: "m", Nodes: []Node{&Text{Content: content}}},
		}}
		out := Serialize(s)
		parsed, err := ParseSchema(out)
		if err != nil {
			t.Fatalf("content %q: %v\n%s", content, err, out)
		}
		m := parsed.Nodes[0].(*Module)
		got := m.Nodes[0].(*Text).Content
		if got != content {
			t.Fatalf("content %q round-tripped as %q", content, got)
		}
	}
}

// TestLayoutTotalsConsistent: for random generated schemas, TotalLen
// equals the end of the furthest module and all anonymous modules are in
// Order.
func TestLayoutTotalsConsistent(t *testing.T) {
	r := rng.New(777)
	tk := tokenizer.New(tokenizer.WordBase + 4096)
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for trial := 0; trial < 60; trial++ {
		var sb strings.Builder
		sb.WriteString(`<schema name="rand">`)
		nMods := r.IntRange(1, 6)
		for i := 0; i < nMods; i++ {
			if r.Intn(3) == 0 {
				sb.WriteString(" loose words here ")
			}
			sb.WriteString(`<module name="m` + string(rune('a'+i)) + `">`)
			n := r.IntRange(1, 8)
			for j := 0; j < n; j++ {
				sb.WriteString(rng.Choice(r, words) + " ")
			}
			if r.Intn(2) == 0 {
				sb.WriteString(`<param name="p" len="2"/>`)
			}
			sb.WriteString(`</module>`)
		}
		sb.WriteString(`</schema>`)
		s, err := ParseSchema(sb.String())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ly, err := Compile(s, tk, PlainTemplate())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		maxEnd := 0
		for _, m := range ly.Modules {
			if m.Parent != "" {
				continue
			}
			if end := m.Start + m.Len; end > maxEnd {
				maxEnd = end
			}
		}
		if ly.TotalLen != maxEnd {
			t.Fatalf("trial %d: TotalLen %d != furthest end %d", trial, ly.TotalLen, maxEnd)
		}
	}
}
