package pml

import (
	"fmt"
	"strings"
)

// escape replaces PML-reserved characters in text content and attribute
// values.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// Serialize renders a schema AST back to PML source. Parsing the result
// yields an equivalent AST (tested as a fixpoint property), which makes
// the promptlang compiler's output loadable by any PML consumer.
func Serialize(s *Schema) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "<schema name=%q>\n", s.Name)
	writeNodes(&sb, s.Nodes, 1)
	for _, sc := range s.Scaffolds {
		fmt.Fprintf(&sb, "  <scaffold name=%q modules=%q/>\n", sc.Name, strings.Join(sc.Modules, " "))
	}
	sb.WriteString("</schema>\n")
	return sb.String()
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
}

func writeNodes(sb *strings.Builder, nodes []Node, depth int) {
	for _, n := range nodes {
		indent(sb, depth)
		switch v := n.(type) {
		case *Text:
			switch v.Role {
			case RoleNone:
				sb.WriteString(escape(v.Content))
				sb.WriteString("\n")
			default:
				fmt.Fprintf(sb, "<%s>%s</%s>\n", v.Role, escape(v.Content), v.Role)
			}
		case *Param:
			fmt.Fprintf(sb, "<param name=%q len=\"%d\"/>\n", v.Name, v.Len)
		case *Module:
			writeModule(sb, v, depth)
		case *Union:
			sb.WriteString("<union>\n")
			for _, m := range v.Members {
				indent(sb, depth+1)
				writeModule(sb, m, depth+1)
			}
			indent(sb, depth)
			sb.WriteString("</union>\n")
		}
	}
}

func writeModule(sb *strings.Builder, m *Module, depth int) {
	if len(m.Nodes) == 0 {
		fmt.Fprintf(sb, "<module name=%q/>\n", m.Name)
		return
	}
	fmt.Fprintf(sb, "<module name=%q>\n", m.Name)
	writeNodes(sb, m.Nodes, depth+1)
	indent(sb, depth)
	sb.WriteString("</module>\n")
}

// SerializePrompt renders a prompt AST back to PML source.
func SerializePrompt(p *Prompt) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "<prompt schema=%q>\n", p.SchemaName)
	writePromptItems(&sb, p.Items, 1)
	sb.WriteString("</prompt>\n")
	return sb.String()
}

func writePromptItems(sb *strings.Builder, items []PromptItem, depth int) {
	for _, it := range items {
		indent(sb, depth)
		switch v := it.(type) {
		case *PromptText:
			if v.Role == RoleNone {
				sb.WriteString(escape(v.Content))
				sb.WriteString("\n")
			} else {
				fmt.Fprintf(sb, "<%s>%s</%s>\n", v.Role, escape(v.Content), v.Role)
			}
		case *Import:
			sb.WriteString("<" + v.Name)
			// Deterministic attribute order.
			keys := make([]string, 0, len(v.Args))
			for k := range v.Args {
				keys = append(keys, k)
			}
			sortStrings(keys)
			for _, k := range keys {
				fmt.Fprintf(sb, " %s=%q", k, escape(v.Args[k]))
			}
			if len(v.Children) == 0 {
				sb.WriteString("/>\n")
			} else {
				sb.WriteString(">\n")
				writePromptItems(sb, v.Children, depth+1)
				indent(sb, depth)
				fmt.Fprintf(sb, "</%s>\n", v.Name)
			}
		}
	}
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
