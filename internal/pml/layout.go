package pml

import (
	"fmt"

	"repro/internal/tokenizer"
)

// Encoder tokenizes text; satisfied by *tokenizer.Tokenizer.
type Encoder interface {
	Encode(text string) []int
}

// SegmentKind distinguishes a module's own content pieces.
type SegmentKind int

const (
	// SegText is literal tokenized schema text.
	SegText SegmentKind = iota
	// SegParam is a parameter slot, encoded as <unk> tokens (§3.3).
	SegParam
	// SegChild marks where a nested module sits inside its parent; the
	// child's states are cached under its own name.
	SegChild
)

// Segment is one contiguous piece of a module's own content, with the
// absolute position ID of every token.
type Segment struct {
	Kind   SegmentKind
	Tokens []int // SegText: literal ids; SegParam: <unk> run
	Pos    []int // absolute position IDs, parallel to Tokens
	Param  string
	MaxLen int    // SegParam: the declared len
	Child  string // SegChild: nested module name
}

// ModuleLayout is a module with resolved absolute positions (§3.3: "the
// starting position ID is determined by the absolute location of the
// prompt module within the schema").
type ModuleLayout struct {
	Name      string
	Parent    string // enclosing module, "" at top level
	Anonymous bool   // anonymous modules are always included in prompts
	Start     int    // first position ID
	Len       int    // total positions spanned (incl. params and children)
	Segments  []Segment
	Children  []string // nested module names in document order
	UnionID   int      // index into Layout.Unions, -1 if not a union member
	Params    []*Param // declared parameters in document order
}

// OwnTokens returns the module's own token count (text + param slots,
// excluding nested children).
func (m *ModuleLayout) OwnTokens() int {
	n := 0
	for _, s := range m.Segments {
		n += len(s.Tokens)
	}
	return n
}

// Param returns the declared parameter by name, or nil.
func (m *ModuleLayout) Param(name string) *Param {
	for _, p := range m.Params {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// ParamSegment returns the slot segment for a parameter name, or nil.
func (m *ModuleLayout) ParamSegment(name string) *Segment {
	for i := range m.Segments {
		if m.Segments[i].Kind == SegParam && m.Segments[i].Param == name {
			return &m.Segments[i]
		}
	}
	return nil
}

// Layout is a schema compiled against a tokenizer and chat template: every
// module has an absolute position range, union members share starts, and
// parameter slots know their <unk> positions.
type Layout struct {
	Schema   *Schema
	Modules  map[string]*ModuleLayout
	Order    []string   // document order (encoding order)
	Unions   [][]string // member names per union
	TotalLen int        // positions consumed by the whole schema
}

// Compile resolves a schema's position-ID layout (§3.3). enc tokenizes
// text segments; tmpl wraps role-tagged text in the target LLM's chat
// format (§3.2.3).
func Compile(s *Schema, enc Encoder, tmpl *Template) (*Layout, error) {
	if tmpl == nil {
		tmpl = PlainTemplate()
	}
	ly := &Layout{
		Schema:  s,
		Modules: map[string]*ModuleLayout{},
	}
	c := &compiler{enc: enc, tmpl: tmpl, ly: ly}
	cursor, err := c.layoutNodes(s.Nodes, "", 0)
	if err != nil {
		return nil, err
	}
	ly.TotalLen = cursor
	return ly, nil
}

type compiler struct {
	enc    Encoder
	tmpl   *Template
	ly     *Layout
	anonID int
}

// layoutNodes lays out sibling nodes starting at position cursor, creating
// ModuleLayouts for named modules and anonymous text. parent is the
// enclosing module name ("" at top level). Returns the cursor after the
// last sibling.
func (c *compiler) layoutNodes(nodes []Node, parent string, cursor int) (int, error) {
	for _, n := range nodes {
		var err error
		cursor, err = c.layoutNode(n, parent, cursor)
		if err != nil {
			return 0, err
		}
	}
	return cursor, nil
}

func (c *compiler) layoutNode(n Node, parent string, cursor int) (int, error) {
	switch v := n.(type) {
	case *Text:
		// Top-level text becomes an anonymous always-included module;
		// inside a module it is part of the parent's own segments — but
		// layoutNode is only called for nodes that create modules; module
		// bodies are handled by layoutModuleBody.
		name := c.freshAnonName()
		toks := c.tmpl.Wrap(v.Role, c.enc.Encode(v.Content))
		m := &ModuleLayout{
			Name: name, Parent: parent, Anonymous: true,
			Start: cursor, UnionID: -1,
		}
		m.Segments = []Segment{textSegment(toks, cursor)}
		m.Len = len(toks)
		c.register(m)
		return cursor + len(toks), nil

	case *Module:
		return c.layoutModule(v, parent, cursor, -1)

	case *Union:
		// Reserve this union's slot before walking members so that
		// unions nested inside a member get distinct ids.
		uid := len(c.ly.Unions)
		c.ly.Unions = append(c.ly.Unions, nil)
		var members []string
		maxLen := 0
		for _, mem := range v.Members {
			end, err := c.layoutModule(mem, parent, cursor, uid)
			if err != nil {
				return 0, err
			}
			members = append(members, mem.Name)
			if sz := end - cursor; sz > maxLen {
				maxLen = sz
			}
		}
		c.ly.Unions[uid] = members
		// §3.3: union members share the starting position; the union
		// consumes the size of its largest child.
		return cursor + maxLen, nil

	case *Param:
		return 0, fmt.Errorf("pml: <param name=%q> outside a module", v.Name)

	default:
		return 0, fmt.Errorf("pml: unexpected node %T", n)
	}
}

func (c *compiler) layoutModule(mod *Module, parent string, cursor, unionID int) (int, error) {
	m := &ModuleLayout{
		Name: mod.Name, Parent: parent,
		Start: cursor, UnionID: unionID,
	}
	c.register(m)
	end, err := c.layoutModuleBody(mod.Nodes, m, cursor)
	if err != nil {
		return 0, err
	}
	m.Len = end - m.Start
	return end, nil
}

// layoutModuleBody lays out the contents of module m starting at cursor.
func (c *compiler) layoutModuleBody(nodes []Node, m *ModuleLayout, cursor int) (int, error) {
	for _, n := range nodes {
		switch v := n.(type) {
		case *Text:
			toks := c.tmpl.Wrap(v.Role, c.enc.Encode(v.Content))
			if len(toks) == 0 {
				continue
			}
			m.Segments = append(m.Segments, textSegment(toks, cursor))
			cursor += len(toks)

		case *Param:
			seg := Segment{
				Kind:   SegParam,
				Tokens: tokenizer.UnkRun(v.Len),
				Pos:    posRange(cursor, v.Len),
				Param:  v.Name,
				MaxLen: v.Len,
			}
			m.Segments = append(m.Segments, seg)
			m.Params = append(m.Params, v)
			cursor += v.Len

		case *Module:
			end, err := c.layoutModule(v, m.Name, cursor, -1)
			if err != nil {
				return 0, err
			}
			m.Segments = append(m.Segments, Segment{Kind: SegChild, Child: v.Name})
			m.Children = append(m.Children, v.Name)
			cursor = end

		case *Union:
			startLen := len(c.ly.Unions)
			end, err := c.layoutNode(v, m.Name, cursor)
			if err != nil {
				return 0, err
			}
			for _, member := range c.ly.Unions[startLen] {
				m.Segments = append(m.Segments, Segment{Kind: SegChild, Child: member})
				m.Children = append(m.Children, member)
			}
			cursor = end

		default:
			return 0, fmt.Errorf("pml: unexpected node %T in module %q", n, m.Name)
		}
	}
	return cursor, nil
}

func (c *compiler) register(m *ModuleLayout) {
	c.ly.Modules[m.Name] = m
	c.ly.Order = append(c.ly.Order, m.Name)
}

func (c *compiler) freshAnonName() string {
	for {
		name := fmt.Sprintf("_anon%d", c.anonID)
		c.anonID++
		if _, taken := c.ly.Modules[name]; !taken {
			return name
		}
	}
}

func textSegment(toks []int, start int) Segment {
	return Segment{Kind: SegText, Tokens: toks, Pos: posRange(start, len(toks))}
}

func posRange(start, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = start + i
	}
	return p
}

// UnionOf returns the union member list containing module name, or nil.
func (ly *Layout) UnionOf(name string) []string {
	m, ok := ly.Modules[name]
	if !ok || m.UnionID < 0 {
		return nil
	}
	return ly.Unions[m.UnionID]
}

// AnonymousModules returns the always-included module names in order.
func (ly *Layout) AnonymousModules() []string {
	var out []string
	for _, name := range ly.Order {
		if ly.Modules[name].Anonymous {
			out = append(out, name)
		}
	}
	return out
}
