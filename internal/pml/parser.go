package pml

import (
	"strconv"
	"strings"
)

// reserved tag names that cannot be used as module names.
var reservedTags = map[string]bool{
	"schema": true, "module": true, "param": true, "union": true,
	"prompt": true, "scaffold": true,
	"system": true, "user": true, "assistant": true,
}

func roleForTag(name string) (Role, bool) {
	switch name {
	case "system":
		return RoleSystem, true
	case "user":
		return RoleUser, true
	case "assistant":
		return RoleAssistant, true
	}
	return RoleNone, false
}

// parser wraps the lexer with one-token lookahead.
type parser struct {
	lx     *lexer
	peeked *tok
}

func (p *parser) next() (tok, error) {
	if p.peeked != nil {
		t := *p.peeked
		p.peeked = nil
		return t, nil
	}
	return p.lx.next()
}

func (p *parser) peek() (tok, error) {
	if p.peeked == nil {
		t, err := p.lx.next()
		if err != nil {
			return tok{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

// ParseSchema parses a PML schema document:
//
//	<schema name="cities">
//	  anonymous text
//	  <module name="trip-plan">Plan a trip of <param name="dur" len="2"/>.</module>
//	  <union><module name="tokyo">...</module><module name="miami">...</module></union>
//	  <scaffold name="pair" modules="trip-plan tokyo"/>
//	</schema>
func ParseSchema(src string) (*Schema, error) {
	p := &parser{lx: newLexer(src)}
	t, err := p.nextNonBlank()
	if err != nil {
		return nil, err
	}
	if t.kind != tokOpenTag || t.name != "schema" {
		return nil, errAt(t.line, t.col, "document must start with <schema>")
	}
	name := t.attrs["name"]
	if name == "" {
		return nil, errAt(t.line, t.col, "<schema> requires a name attribute")
	}
	s := &Schema{Name: name}
	if err := p.parseSchemaBody(s, "schema"); err != nil {
		return nil, err
	}
	// Nothing but whitespace may follow.
	t, err = p.nextNonBlank()
	if err != nil {
		return nil, err
	}
	if t.kind != tokEOF {
		return nil, errAt(t.line, t.col, "content after </schema>")
	}
	if err := validateSchema(s); err != nil {
		return nil, err
	}
	return s, nil
}

// nextNonBlank skips whitespace-only text tokens.
func (p *parser) nextNonBlank() (tok, error) {
	for {
		t, err := p.next()
		if err != nil {
			return tok{}, err
		}
		if t.kind == tokText && strings.TrimSpace(t.text) == "" {
			continue
		}
		return t, nil
	}
}

// parseSchemaBody consumes nodes until the matching close tag of `until`.
func (p *parser) parseSchemaBody(s *Schema, until string) error {
	for {
		t, err := p.next()
		if err != nil {
			return err
		}
		switch t.kind {
		case tokEOF:
			return errAt(t.line, t.col, "missing </%s>", until)
		case tokCloseTag:
			if t.name != until {
				return errAt(t.line, t.col, "unexpected </%s>, want </%s>", t.name, until)
			}
			return nil
		case tokText:
			if txt := strings.TrimSpace(t.text); txt != "" {
				s.Nodes = append(s.Nodes, &Text{Content: txt})
			}
		case tokOpenTag, tokSelfTag:
			node, scaffold, err := p.parseSchemaElement(t)
			if err != nil {
				return err
			}
			if scaffold != nil {
				s.Scaffolds = append(s.Scaffolds, *scaffold)
			} else if node != nil {
				s.Nodes = append(s.Nodes, node)
			}
		}
	}
}

// parseSchemaElement parses one element that opened with tag t at schema
// top level or inside a module.
func (p *parser) parseSchemaElement(t tok) (Node, *Scaffold, error) {
	switch t.name {
	case "module":
		m, err := p.parseModule(t)
		return m, nil, err
	case "union":
		u, err := p.parseUnion(t)
		return u, nil, err
	case "param":
		prm, err := parseParamTag(t)
		return prm, nil, err
	case "scaffold":
		if t.kind != tokSelfTag {
			return nil, nil, errAt(t.line, t.col, "<scaffold> must be self-closing")
		}
		name := t.attrs["name"]
		mods := strings.Fields(t.attrs["modules"])
		if name == "" || len(mods) == 0 {
			return nil, nil, errAt(t.line, t.col, "<scaffold> requires name and modules attributes")
		}
		return nil, &Scaffold{Name: name, Modules: mods}, nil
	case "system", "user", "assistant":
		role, _ := roleForTag(t.name)
		if t.kind == tokSelfTag {
			return &Text{Role: role}, nil, nil
		}
		content, err := p.parseTextOnlyBody(t.name)
		if err != nil {
			return nil, nil, err
		}
		return &Text{Content: content, Role: role}, nil, nil
	case "schema", "prompt":
		return nil, nil, errAt(t.line, t.col, "<%s> cannot nest", t.name)
	default:
		return nil, nil, errAt(t.line, t.col, "unknown schema element <%s> (modules are declared with <module name=...>)", t.name)
	}
}

// parseTextOnlyBody reads the body of a role tag, which may contain only
// character data.
func (p *parser) parseTextOnlyBody(until string) (string, error) {
	var sb strings.Builder
	for {
		t, err := p.next()
		if err != nil {
			return "", err
		}
		switch t.kind {
		case tokText:
			sb.WriteString(t.text)
		case tokCloseTag:
			if t.name != until {
				return "", errAt(t.line, t.col, "unexpected </%s> inside <%s>", t.name, until)
			}
			return strings.TrimSpace(sb.String()), nil
		case tokEOF:
			return "", errAt(t.line, t.col, "missing </%s>", until)
		default:
			return "", errAt(t.line, t.col, "<%s> may contain only text", until)
		}
	}
}

func parseParamTag(t tok) (*Param, error) {
	if t.kind != tokSelfTag {
		return nil, errAt(t.line, t.col, "<param> must be self-closing")
	}
	name := t.attrs["name"]
	if name == "" {
		return nil, errAt(t.line, t.col, "<param> requires a name attribute")
	}
	lenStr := t.attrs["len"]
	n, err := strconv.Atoi(lenStr)
	if err != nil || n <= 0 {
		return nil, errAt(t.line, t.col, "<param name=%q> requires positive integer len, got %q", name, lenStr)
	}
	return &Param{Name: name, Len: n}, nil
}

func (p *parser) parseModule(open tok) (*Module, error) {
	name := open.attrs["name"]
	if name == "" {
		return nil, errAt(open.line, open.col, "<module> requires a name attribute")
	}
	if reservedTags[name] {
		return nil, errAt(open.line, open.col, "module name %q is reserved", name)
	}
	m := &Module{Name: name}
	if open.kind == tokSelfTag {
		return m, nil
	}
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		switch t.kind {
		case tokEOF:
			return nil, errAt(t.line, t.col, "missing </module> for %q", name)
		case tokCloseTag:
			if t.name != "module" {
				return nil, errAt(t.line, t.col, "unexpected </%s> inside module %q", t.name, name)
			}
			return m, nil
		case tokText:
			if txt := strings.TrimSpace(t.text); txt != "" {
				m.Nodes = append(m.Nodes, &Text{Content: txt})
			}
		case tokOpenTag, tokSelfTag:
			node, scaffold, err := p.parseSchemaElement(t)
			if err != nil {
				return nil, err
			}
			if scaffold != nil {
				return nil, errAt(t.line, t.col, "<scaffold> not allowed inside a module")
			}
			m.Nodes = append(m.Nodes, node)
		}
	}
}

func (p *parser) parseUnion(open tok) (*Union, error) {
	if open.kind == tokSelfTag {
		return nil, errAt(open.line, open.col, "<union> must contain modules")
	}
	u := &Union{}
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		switch t.kind {
		case tokEOF:
			return nil, errAt(t.line, t.col, "missing </union>")
		case tokCloseTag:
			if t.name != "union" {
				return nil, errAt(t.line, t.col, "unexpected </%s> inside union", t.name)
			}
			if len(u.Members) == 0 {
				return nil, errAt(t.line, t.col, "union has no members")
			}
			return u, nil
		case tokText:
			if strings.TrimSpace(t.text) != "" {
				return nil, errAt(t.line, t.col, "text not allowed directly inside <union>")
			}
		case tokOpenTag, tokSelfTag:
			if t.name != "module" {
				return nil, errAt(t.line, t.col, "<union> may contain only <module> elements, got <%s>", t.name)
			}
			m, err := p.parseModule(t)
			if err != nil {
				return nil, err
			}
			u.Members = append(u.Members, m)
		}
	}
}

// ParsePrompt parses a PML prompt document:
//
//	<prompt schema="cities">
//	  <trip-plan duration="3 days"/>
//	  <miami/>
//	  Highlight the surf spots.
//	</prompt>
func ParsePrompt(src string) (*Prompt, error) {
	p := &parser{lx: newLexer(src)}
	t, err := p.nextNonBlank()
	if err != nil {
		return nil, err
	}
	if t.kind != tokOpenTag || t.name != "prompt" {
		return nil, errAt(t.line, t.col, "document must start with <prompt>")
	}
	schema := t.attrs["schema"]
	if schema == "" {
		return nil, errAt(t.line, t.col, "<prompt> requires a schema attribute")
	}
	pr := &Prompt{SchemaName: schema}
	items, err := p.parsePromptBody("prompt")
	if err != nil {
		return nil, err
	}
	pr.Items = items
	t, err = p.nextNonBlank()
	if err != nil {
		return nil, err
	}
	if t.kind != tokEOF {
		return nil, errAt(t.line, t.col, "content after </prompt>")
	}
	return pr, nil
}

func (p *parser) parsePromptBody(until string) ([]PromptItem, error) {
	var items []PromptItem
	for {
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		switch t.kind {
		case tokEOF:
			return nil, errAt(t.line, t.col, "missing </%s>", until)
		case tokCloseTag:
			if t.name != until {
				return nil, errAt(t.line, t.col, "unexpected </%s>, want </%s>", t.name, until)
			}
			return items, nil
		case tokText:
			if txt := strings.TrimSpace(t.text); txt != "" {
				items = append(items, &PromptText{Content: txt})
			}
		case tokOpenTag, tokSelfTag:
			if role, ok := roleForTag(t.name); ok {
				if t.kind == tokSelfTag {
					items = append(items, &PromptText{Role: role})
					continue
				}
				content, err := p.parseTextOnlyBody(t.name)
				if err != nil {
					return nil, err
				}
				items = append(items, &PromptText{Content: content, Role: role})
				continue
			}
			if reservedTags[t.name] {
				return nil, errAt(t.line, t.col, "<%s> not allowed inside a prompt", t.name)
			}
			imp := &Import{Name: t.name, Args: t.attrs}
			if t.kind == tokOpenTag {
				children, err := p.parsePromptBody(t.name)
				if err != nil {
					return nil, err
				}
				imp.Children = children
			}
			items = append(items, imp)
		}
	}
}

// validateSchema enforces structural rules that the grammar alone cannot:
// globally unique module names (imports reference modules by bare name),
// unique parameter names per module, and scaffold references resolving to
// declared modules.
func validateSchema(s *Schema) error {
	names := map[string]bool{}
	var walk func(nodes []Node, owner string) error
	walk = func(nodes []Node, owner string) error {
		params := map[string]bool{}
		for _, n := range nodes {
			switch v := n.(type) {
			case *Module:
				if names[v.Name] {
					return errAt(0, 0, "duplicate module name %q", v.Name)
				}
				names[v.Name] = true
				if err := walk(v.Nodes, v.Name); err != nil {
					return err
				}
			case *Union:
				for _, m := range v.Members {
					if names[m.Name] {
						return errAt(0, 0, "duplicate module name %q", m.Name)
					}
					names[m.Name] = true
					if err := walk(m.Nodes, m.Name); err != nil {
						return err
					}
				}
			case *Param:
				if owner == "" {
					return errAt(0, 0, "<param name=%q> outside a module", v.Name)
				}
				if params[v.Name] {
					return errAt(0, 0, "duplicate param %q in module %q", v.Name, owner)
				}
				params[v.Name] = true
			}
		}
		return nil
	}
	if err := walk(s.Nodes, ""); err != nil {
		return err
	}
	seenScaffold := map[string]bool{}
	for _, sc := range s.Scaffolds {
		if seenScaffold[sc.Name] {
			return errAt(0, 0, "duplicate scaffold %q", sc.Name)
		}
		seenScaffold[sc.Name] = true
		for _, m := range sc.Modules {
			if !names[m] {
				return errAt(0, 0, "scaffold %q references unknown module %q", sc.Name, m)
			}
		}
	}
	return nil
}
