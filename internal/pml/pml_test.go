package pml

import (
	"strings"
	"testing"

	"repro/internal/tokenizer"
)

const citiesSchema = `
<schema name="cities">
  You are a travel assistant.
  <module name="city-info">General info about world cities and their culture.</module>
  <module name="trip-plan">
    Plan a trip of duration <param name="duration" len="3"/> with a relaxed pace.
  </module>
  <union>
    <module name="tokyo">Tokyo is the capital of Japan, famous for Shibuya crossing.</module>
    <module name="miami">Miami is a coastal city in Florida, famous for beaches.</module>
    <module name="paris">Paris is the capital of France, famous for the Eiffel tower.</module>
  </union>
</schema>`

func mustSchema(t *testing.T, src string) *Schema {
	t.Helper()
	s, err := ParseSchema(src)
	if err != nil {
		t.Fatalf("ParseSchema: %v", err)
	}
	return s
}

func TestParseSchemaBasic(t *testing.T) {
	s := mustSchema(t, citiesSchema)
	if s.Name != "cities" {
		t.Fatalf("name = %q", s.Name)
	}
	// anonymous text + 2 modules + union
	if len(s.Nodes) != 4 {
		t.Fatalf("nodes = %d", len(s.Nodes))
	}
	if _, ok := s.Nodes[0].(*Text); !ok {
		t.Fatalf("node 0 should be text, got %T", s.Nodes[0])
	}
	u, ok := s.Nodes[3].(*Union)
	if !ok {
		t.Fatalf("node 3 should be union, got %T", s.Nodes[3])
	}
	if len(u.Members) != 3 {
		t.Fatalf("union members = %d", len(u.Members))
	}
}

func TestParseSchemaParam(t *testing.T) {
	s := mustSchema(t, citiesSchema)
	m := s.Nodes[2].(*Module)
	if m.Name != "trip-plan" {
		t.Fatalf("module = %q", m.Name)
	}
	var p *Param
	for _, n := range m.Nodes {
		if pp, ok := n.(*Param); ok {
			p = pp
		}
	}
	if p == nil || p.Name != "duration" || p.Len != 3 {
		t.Fatalf("param = %+v", p)
	}
}

func TestParseSchemaErrors(t *testing.T) {
	cases := map[string]string{
		"no schema root":      `<module name="x">hi</module>`,
		"missing name":        `<schema>hi</schema>`,
		"unterminated":        `<schema name="s"><module name="m">text`,
		"bad close order":     `<schema name="s"><module name="m">text</schema></module>`,
		"dup module":          `<schema name="s"><module name="m">a</module><module name="m">b</module></schema>`,
		"dup module in union": `<schema name="s"><module name="m">a</module><union><module name="m">b</module><module name="n">c</module></union></schema>`,
		"reserved name":       `<schema name="s"><module name="union">a</module></schema>`,
		"param no len":        `<schema name="s"><module name="m"><param name="p"/></module></schema>`,
		"param bad len":       `<schema name="s"><module name="m"><param name="p" len="-2"/></module></schema>`,
		"param outside":       `<schema name="s"><param name="p" len="2"/></schema>`,
		"dup param":           `<schema name="s"><module name="m"><param name="p" len="1"/><param name="p" len="2"/></module></schema>`,
		"union with text":     `<schema name="s"><union>hello<module name="m">a</module></union></schema>`,
		"union non-module":    `<schema name="s"><union><param name="p" len="1"/></union></schema>`,
		"empty union":         `<schema name="s"><union></union></schema>`,
		"nested schema":       `<schema name="s"><schema name="t"></schema></schema>`,
		"unknown element":     `<schema name="s"><frobnicate/></schema>`,
		"trailing content":    `<schema name="s">x</schema>more`,
		"scaffold unknown":    `<schema name="s"><module name="m">a</module><scaffold name="sc" modules="m ghost"/></schema>`,
		"dup scaffold":        `<schema name="s"><module name="m">a</module><scaffold name="sc" modules="m"/><scaffold name="sc" modules="m"/></schema>`,
		"unquoted attr":       `<schema name=s>x</schema>`,
		"attr no value":       `<schema name="s"><module name>x</module></schema>`,
	}
	for label, src := range cases {
		if _, err := ParseSchema(src); err == nil {
			t.Errorf("%s: expected error", label)
		}
	}
}

func TestParseSchemaChatTags(t *testing.T) {
	s := mustSchema(t, `<schema name="c">
	  <system>Be helpful.</system>
	  <module name="m"><user>What is up?</user></module>
	</schema>`)
	txt := s.Nodes[0].(*Text)
	if txt.Role != RoleSystem || txt.Content != "Be helpful." {
		t.Fatalf("system text = %+v", txt)
	}
	m := s.Nodes[1].(*Module)
	inner := m.Nodes[0].(*Text)
	if inner.Role != RoleUser {
		t.Fatalf("user role missing: %+v", inner)
	}
}

func TestParseSchemaScaffold(t *testing.T) {
	s := mustSchema(t, `<schema name="c">
	  <module name="a">alpha</module>
	  <module name="b">beta</module>
	  <scaffold name="ab" modules="a b"/>
	</schema>`)
	if len(s.Scaffolds) != 1 || s.Scaffolds[0].Name != "ab" || len(s.Scaffolds[0].Modules) != 2 {
		t.Fatalf("scaffolds = %+v", s.Scaffolds)
	}
}

func TestParseSchemaNestedModules(t *testing.T) {
	s := mustSchema(t, `<schema name="c">
	  <module name="outer">
	    before
	    <module name="inner">nested content</module>
	    after
	  </module>
	</schema>`)
	outer := s.Nodes[0].(*Module)
	if len(outer.Nodes) != 3 {
		t.Fatalf("outer nodes = %d", len(outer.Nodes))
	}
	if _, ok := outer.Nodes[1].(*Module); !ok {
		t.Fatalf("middle node should be module, got %T", outer.Nodes[1])
	}
}

func TestParseSchemaEntities(t *testing.T) {
	s := mustSchema(t, `<schema name="c"><module name="m">a &lt; b &amp; c</module></schema>`)
	m := s.Nodes[0].(*Module)
	txt := m.Nodes[0].(*Text)
	if txt.Content != "a < b & c" {
		t.Fatalf("entities not unescaped: %q", txt.Content)
	}
}

func TestParsePromptBasic(t *testing.T) {
	p, err := ParsePrompt(`<prompt schema="cities">
	  <trip-plan duration="3 days"/>
	  <miami/>
	  Highlight the surf spots.
	</prompt>`)
	if err != nil {
		t.Fatal(err)
	}
	if p.SchemaName != "cities" {
		t.Fatalf("schema = %q", p.SchemaName)
	}
	if len(p.Items) != 3 {
		t.Fatalf("items = %d", len(p.Items))
	}
	imp := p.Items[0].(*Import)
	if imp.Name != "trip-plan" || imp.Args["duration"] != "3 days" {
		t.Fatalf("import = %+v", imp)
	}
	if _, ok := p.Items[2].(*PromptText); !ok {
		t.Fatalf("item 2 should be text, got %T", p.Items[2])
	}
}

func TestParsePromptNestedImports(t *testing.T) {
	p, err := ParsePrompt(`<prompt schema="travel">
	  <travel-plan for="a week"><overseas><tokyo/></overseas></travel-plan>
	  <user>Create a travel plan</user>
	</prompt>`)
	if err != nil {
		t.Fatal(err)
	}
	top := p.Items[0].(*Import)
	if top.Name != "travel-plan" || top.Args["for"] != "a week" {
		t.Fatalf("top import = %+v", top)
	}
	mid := top.Children[0].(*Import)
	if mid.Name != "overseas" || len(mid.Children) != 1 {
		t.Fatalf("mid import = %+v", mid)
	}
	if u := p.Items[1].(*PromptText); u.Role != RoleUser {
		t.Fatalf("user item = %+v", u)
	}
}

func TestParsePromptErrors(t *testing.T) {
	cases := map[string]string{
		"no prompt root":  `<schema name="s">x</schema>`,
		"missing schema":  `<prompt>x</prompt>`,
		"reserved inside": `<prompt schema="s"><module name="m">x</module></prompt>`,
		"unclosed import": `<prompt schema="s"><a>text`,
		"trailing":        `<prompt schema="s">x</prompt>y`,
	}
	for label, src := range cases {
		if _, err := ParsePrompt(src); err == nil {
			t.Errorf("%s: expected error", label)
		}
	}
}

// ---- Layout ----

func compileCities(t *testing.T) (*Layout, *tokenizer.Tokenizer) {
	t.Helper()
	tk := tokenizer.New(tokenizer.WordBase + 4096)
	s := mustSchema(t, citiesSchema)
	ly, err := Compile(s, tk, PlainTemplate())
	if err != nil {
		t.Fatal(err)
	}
	return ly, tk
}

func TestLayoutSequentialStarts(t *testing.T) {
	ly, tk := compileCities(t)
	anon := ly.Modules["_anon0"]
	if anon == nil || !anon.Anonymous || anon.Start != 0 {
		t.Fatalf("anon = %+v", anon)
	}
	wantAnonLen := len(tk.Encode("You are a travel assistant."))
	if anon.Len != wantAnonLen {
		t.Fatalf("anon len = %d want %d", anon.Len, wantAnonLen)
	}
	ci := ly.Modules["city-info"]
	if ci.Start != anon.Start+anon.Len {
		t.Fatalf("city-info start = %d, want %d", ci.Start, anon.Start+anon.Len)
	}
	tp := ly.Modules["trip-plan"]
	if tp.Start != ci.Start+ci.Len {
		t.Fatalf("trip-plan start = %d", tp.Start)
	}
}

func TestLayoutUnionSharedStart(t *testing.T) {
	ly, _ := compileCities(t)
	tok := ly.Modules["tokyo"]
	mia := ly.Modules["miami"]
	par := ly.Modules["paris"]
	if tok.Start != mia.Start || mia.Start != par.Start {
		t.Fatalf("union starts differ: %d %d %d", tok.Start, mia.Start, par.Start)
	}
	if tok.UnionID != mia.UnionID {
		t.Fatal("union ids differ")
	}
	members := ly.UnionOf("miami")
	if len(members) != 3 {
		t.Fatalf("UnionOf = %v", members)
	}
	// The schema's total length accounts for the largest member.
	maxLen := tok.Len
	if mia.Len > maxLen {
		maxLen = mia.Len
	}
	if par.Len > maxLen {
		maxLen = par.Len
	}
	if ly.TotalLen != tok.Start+maxLen {
		t.Fatalf("TotalLen = %d, want %d", ly.TotalLen, tok.Start+maxLen)
	}
}

func TestLayoutParamSlot(t *testing.T) {
	ly, tk := compileCities(t)
	tp := ly.Modules["trip-plan"]
	seg := tp.ParamSegment("duration")
	if seg == nil {
		t.Fatal("param segment missing")
	}
	if len(seg.Tokens) != 3 || seg.Tokens[0] != tokenizer.UnkID {
		t.Fatalf("param tokens = %v", seg.Tokens)
	}
	// Slot positions immediately follow the preceding text.
	pre := len(tk.Encode("Plan a trip of duration"))
	if seg.Pos[0] != tp.Start+pre {
		t.Fatalf("param pos = %d, want %d", seg.Pos[0], tp.Start+pre)
	}
	if tp.Param("duration") == nil || tp.Param("ghost") != nil {
		t.Fatal("Param lookup broken")
	}
}

func TestLayoutNonOverlappingRanges(t *testing.T) {
	ly, _ := compileCities(t)
	// No two non-union, non-nested modules may overlap.
	type span struct {
		name    string
		lo, hi  int
		unionID int
		parent  string
	}
	var spans []span
	for name, m := range ly.Modules {
		spans = append(spans, span{name, m.Start, m.Start + m.Len, m.UnionID, m.Parent})
	}
	for i := 0; i < len(spans); i++ {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.unionID >= 0 && a.unionID == b.unionID {
				continue // union members intentionally share positions
			}
			if a.parent == b.name || b.parent == a.name {
				continue // nested inside the other
			}
			if a.lo < b.hi && b.lo < a.hi && a.lo != a.hi && b.lo != b.hi {
				t.Fatalf("modules %s [%d,%d) and %s [%d,%d) overlap",
					a.name, a.lo, a.hi, b.name, b.lo, b.hi)
			}
		}
	}
}

func TestLayoutNestedChildren(t *testing.T) {
	tk := tokenizer.New(tokenizer.WordBase + 4096)
	s := mustSchema(t, `<schema name="c">
	  <module name="outer">
	    intro words
	    <module name="inner">nested content here</module>
	    outro words
	  </module>
	</schema>`)
	ly, err := Compile(s, tk, PlainTemplate())
	if err != nil {
		t.Fatal(err)
	}
	outer := ly.Modules["outer"]
	inner := ly.Modules["inner"]
	if inner.Parent != "outer" {
		t.Fatalf("inner parent = %q", inner.Parent)
	}
	if len(outer.Children) != 1 || outer.Children[0] != "inner" {
		t.Fatalf("outer children = %v", outer.Children)
	}
	// inner sits between outer's two text segments.
	introLen := len(tk.Encode("intro words"))
	if inner.Start != outer.Start+introLen {
		t.Fatalf("inner start = %d", inner.Start)
	}
	// outer spans its children.
	if outer.Len != introLen+inner.Len+len(tk.Encode("outro words")) {
		t.Fatalf("outer len = %d", outer.Len)
	}
	// outer's own tokens exclude inner's.
	if outer.OwnTokens() != introLen+len(tk.Encode("outro words")) {
		t.Fatalf("outer own tokens = %d", outer.OwnTokens())
	}
}

func TestLayoutUnionInsideModule(t *testing.T) {
	tk := tokenizer.New(tokenizer.WordBase + 4096)
	s := mustSchema(t, `<schema name="c">
	  <module name="travel-plan">
	    plan the trip
	    <union>
	      <module name="overseas">fly abroad with a passport ready</module>
	      <module name="domestic">drive locally</module>
	    </union>
	  </module>
	</schema>`)
	ly, err := Compile(s, tk, PlainTemplate())
	if err != nil {
		t.Fatal(err)
	}
	ov := ly.Modules["overseas"]
	dom := ly.Modules["domestic"]
	if ov.Start != dom.Start {
		t.Fatal("union members in module must share start")
	}
	tp := ly.Modules["travel-plan"]
	if len(tp.Children) != 2 {
		t.Fatalf("children = %v", tp.Children)
	}
	if tp.Len != len(tk.Encode("plan the trip"))+ov.Len { // overseas is larger
		t.Fatalf("travel-plan len = %d", tp.Len)
	}
}

func TestNestedUnionDistinctIDs(t *testing.T) {
	// Regression: a union nested inside a member of another union must
	// get its own UnionID (the outer slot is reserved before members are
	// laid out).
	tk := tokenizer.New(tokenizer.WordBase + 4096)
	s := mustSchema(t, `<schema name="c">
	  <union>
	    <module name="overseas">abroad
	      <union>
	        <module name="tokyo">tokyo city</module>
	        <module name="paris">paris city</module>
	      </union>
	    </module>
	    <module name="domestic">local travel by car</module>
	  </union>
	</schema>`)
	ly, err := Compile(s, tk, PlainTemplate())
	if err != nil {
		t.Fatal(err)
	}
	ov := ly.Modules["overseas"]
	tok := ly.Modules["tokyo"]
	par := ly.Modules["paris"]
	dom := ly.Modules["domestic"]
	if ov.UnionID == tok.UnionID {
		t.Fatalf("nested union shares id with outer union: %d", ov.UnionID)
	}
	if tok.UnionID != par.UnionID {
		t.Fatal("siblings of the inner union must share an id")
	}
	if ov.UnionID != dom.UnionID {
		t.Fatal("members of the outer union must share an id")
	}
	if tok.Start != par.Start {
		t.Fatal("inner union members must share a start")
	}
}

func TestLayoutChatTemplateWrapping(t *testing.T) {
	tk := tokenizer.New(tokenizer.WordBase + 4096)
	s := mustSchema(t, `<schema name="c"><system>obey</system></schema>`)
	ly, err := Compile(s, tk, LlamaTemplate())
	if err != nil {
		t.Fatal(err)
	}
	anon := ly.Modules["_anon0"]
	toks := anon.Segments[0].Tokens
	if toks[0] != tokenizer.SysOpenID || toks[len(toks)-1] != tokenizer.SysCloseID {
		t.Fatalf("system wrap = %v", toks)
	}
	// Plain template leaves it bare.
	ly2, err := Compile(s, tk, PlainTemplate())
	if err != nil {
		t.Fatal(err)
	}
	if got := ly2.Modules["_anon0"].Segments[0].Tokens; len(got) != 1 {
		t.Fatalf("plain wrap = %v", got)
	}
}

func TestTemplateWrapRoles(t *testing.T) {
	tm := LlamaTemplate()
	content := []int{tokenizer.WordBase + 1}
	u := tm.Wrap(RoleUser, content)
	if u[0] != tokenizer.InstOpenID || u[len(u)-1] != tokenizer.InstCloseID {
		t.Fatalf("user wrap = %v", u)
	}
	a := tm.Wrap(RoleAssistant, content)
	if a[len(a)-1] != tokenizer.EosID {
		t.Fatalf("assistant wrap = %v", a)
	}
	if got := tm.Wrap(RoleNone, content); len(got) != 1 {
		t.Fatalf("none wrap = %v", got)
	}
}

func TestTemplateFor(t *testing.T) {
	if TemplateFor("llama-style").Name != "llama" {
		t.Fatal("llama template lookup")
	}
	if TemplateFor("mpt-style").Name != "chatml" {
		t.Fatal("mpt template lookup")
	}
	if TemplateFor("unknown").Name != "plain" {
		t.Fatal("default template lookup")
	}
}

func TestLayoutAnonymousModules(t *testing.T) {
	ly, _ := compileCities(t)
	anons := ly.AnonymousModules()
	if len(anons) != 1 || anons[0] != "_anon0" {
		t.Fatalf("anon modules = %v", anons)
	}
}

func TestLayoutOrderIsDocumentOrder(t *testing.T) {
	ly, _ := compileCities(t)
	want := []string{"_anon0", "city-info", "trip-plan", "tokyo", "miami", "paris"}
	if len(ly.Order) != len(want) {
		t.Fatalf("order = %v", ly.Order)
	}
	for i, n := range want {
		if ly.Order[i] != n {
			t.Fatalf("order[%d] = %q, want %q", i, ly.Order[i], n)
		}
	}
}

func TestSerializePromptRoundTrip(t *testing.T) {
	src := `<prompt schema="travel">
	  <trip-plan duration="3 days" pace="relaxed"/>
	  <travel-plan for="a week"><overseas><tokyo/></overseas></travel-plan>
	  Highlight the surf spots.
	  <user>And the food &amp; drink.</user>
	</prompt>`
	p1, err := ParsePrompt(src)
	if err != nil {
		t.Fatal(err)
	}
	out1 := SerializePrompt(p1)
	p2, err := ParsePrompt(out1)
	if err != nil {
		t.Fatalf("serialized prompt does not parse: %v\n%s", err, out1)
	}
	if out2 := SerializePrompt(p2); out2 != out1 {
		t.Fatalf("prompt serialize/parse not a fixpoint:\n%s\nvs\n%s", out1, out2)
	}
	// Structure preserved.
	if p2.SchemaName != "travel" || len(p2.Items) != 4 {
		t.Fatalf("round-trip structure: %+v", p2)
	}
	imp := p2.Items[0].(*Import)
	if imp.Args["duration"] != "3 days" || imp.Args["pace"] != "relaxed" {
		t.Fatalf("args lost: %v", imp.Args)
	}
	nested := p2.Items[1].(*Import).Children[0].(*Import)
	if nested.Name != "overseas" {
		t.Fatalf("nesting lost: %+v", nested)
	}
	if txt := p2.Items[3].(*PromptText); txt.Role != RoleUser || !strings.Contains(txt.Content, "food & drink") {
		t.Fatalf("role text lost: %+v", txt)
	}
}

func TestSerializePromptEscapesArgs(t *testing.T) {
	p := &Prompt{SchemaName: "s", Items: []PromptItem{
		&Import{Name: "m", Args: map[string]string{"q": `a "quoted" <value>`}},
	}}
	out := SerializePrompt(p)
	p2, err := ParsePrompt(out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if got := p2.Items[0].(*Import).Args["q"]; got != `a "quoted" <value>` {
		t.Fatalf("arg round-tripped as %q", got)
	}
}

func TestLexerUnterminatedTag(t *testing.T) {
	if _, err := ParseSchema(`<schema name="s"><module name="m`); err == nil {
		t.Fatal("expected error for unterminated tag")
	}
}

func TestLexerLineNumbers(t *testing.T) {
	_, err := ParseSchema("<schema name=\"s\">\n\n<bogus/></schema>")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if pe.Line != 3 {
		t.Fatalf("error line = %d, want 3", pe.Line)
	}
}

func TestSelfClosingModuleEmpty(t *testing.T) {
	s := mustSchema(t, `<schema name="c"><module name="empty"/></schema>`)
	m := s.Nodes[0].(*Module)
	if m.Name != "empty" || len(m.Nodes) != 0 {
		t.Fatalf("empty module = %+v", m)
	}
}

func TestRoleString(t *testing.T) {
	for r, want := range map[Role]string{RoleNone: "none", RoleSystem: "system", RoleUser: "user", RoleAssistant: "assistant"} {
		if r.String() != want {
			t.Fatalf("Role(%d).String() = %q", r, r.String())
		}
	}
}

func TestParseErrorFormat(t *testing.T) {
	e := errAt(3, 7, "boom %d", 42)
	if !strings.Contains(e.Error(), "3:7") || !strings.Contains(e.Error(), "boom 42") {
		t.Fatalf("error format = %q", e.Error())
	}
}
