package pml

import "repro/internal/tokenizer"

// Template maps chat-role tags onto an LLM's native conversation format
// (§3.2.3): Prompt Cache "dynamically translates and compiles these
// specialized tags to align with the designated prompt template of the
// LLM in use". A Template supplies the token sequences wrapped around each
// role's content.
type Template struct {
	Name string

	SystemPrefix, SystemSuffix       []int
	UserPrefix, UserSuffix           []int
	AssistantPrefix, AssistantSuffix []int
}

// Wrap surrounds content tokens with the role's prefix/suffix.
func (t *Template) Wrap(role Role, content []int) []int {
	var pre, suf []int
	switch role {
	case RoleSystem:
		pre, suf = t.SystemPrefix, t.SystemSuffix
	case RoleUser:
		pre, suf = t.UserPrefix, t.UserSuffix
	case RoleAssistant:
		pre, suf = t.AssistantPrefix, t.AssistantSuffix
	default:
		return content
	}
	out := make([]int, 0, len(pre)+len(content)+len(suf))
	out = append(out, pre...)
	out = append(out, content...)
	out = append(out, suf...)
	return out
}

// LlamaTemplate formats roles in the Llama2 chat style:
// <s>[INST] <<SYS>> system <</SYS>> user [/INST] assistant </s>.
func LlamaTemplate() *Template {
	return &Template{
		Name:            "llama",
		SystemPrefix:    []int{tokenizer.SysOpenID},
		SystemSuffix:    []int{tokenizer.SysCloseID},
		UserPrefix:      []int{tokenizer.InstOpenID},
		UserSuffix:      []int{tokenizer.InstCloseID},
		AssistantPrefix: nil,
		AssistantSuffix: []int{tokenizer.EosID},
	}
}

// ChatMLTemplate formats roles in the ChatML-ish style MPT uses; with this
// repository's special-token inventory the role markers reuse the INST and
// SYS tokens but place BOS/EOS per message.
func ChatMLTemplate() *Template {
	return &Template{
		Name:            "chatml",
		SystemPrefix:    []int{tokenizer.BosID, tokenizer.SysOpenID},
		SystemSuffix:    []int{tokenizer.SysCloseID, tokenizer.EosID},
		UserPrefix:      []int{tokenizer.BosID, tokenizer.InstOpenID},
		UserSuffix:      []int{tokenizer.EosID},
		AssistantPrefix: []int{tokenizer.BosID},
		AssistantSuffix: []int{tokenizer.EosID},
	}
}

// PlainTemplate passes role content through unwrapped (Falcon-style plain
// continuation models).
func PlainTemplate() *Template {
	return &Template{Name: "plain"}
}

// TemplateFor returns the conversation template used by the given
// architecture family name (the Config.Name values of internal/model).
func TemplateFor(arch string) *Template {
	switch arch {
	case "llama-style", "llama-style-large", "codellama-style":
		return LlamaTemplate()
	case "mpt-style", "gpt2-style":
		return ChatMLTemplate()
	default:
		return PlainTemplate()
	}
}
