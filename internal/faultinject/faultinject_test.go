package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if err := in.Fire("anything"); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if in.Fired("anything") != 0 || in.Calls("anything") != 0 {
		t.Fatal("nil injector has counters")
	}
}

func TestUnarmedPointNeverFires(t *testing.T) {
	in := New(1)
	if err := in.Fire("disk.read"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
	if in.Calls("disk.read") != 0 {
		t.Fatal("unarmed point counted a call")
	}
}

func TestTimesCapsFiring(t *testing.T) {
	in := New(1)
	in.Set("p", Rule{Err: ErrTransient, Times: 2})
	var errs int
	for i := 0; i < 5; i++ {
		if err := in.Fire("p"); err != nil {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("wrong error: %v", err)
			}
			errs++
		}
	}
	if errs != 2 || in.Fired("p") != 2 || in.Calls("p") != 5 {
		t.Fatalf("errs=%d fired=%d calls=%d, want 2/2/5", errs, in.Fired("p"), in.Calls("p"))
	}
}

func TestEveryNthCall(t *testing.T) {
	in := New(1)
	in.Set("p", Rule{Err: ErrCorrupt, Every: 3})
	var pattern []bool
	for i := 0; i < 6; i++ {
		pattern = append(pattern, in.Fire("p") != nil)
	}
	want := []bool{false, false, true, false, false, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("call %d: fired=%v, want %v (pattern %v)", i+1, pattern[i], want[i], pattern)
		}
	}
}

func TestProbabilisticIsSeededDeterministic(t *testing.T) {
	run := func() []bool {
		in := New(42)
		in.Set("p", Rule{Err: ErrTransient, Prob: 0.5})
		var out []bool
		for i := 0; i < 32; i++ {
			out = append(out, in.Fire("p") != nil)
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob 0.5 fired %d/%d times — not probabilistic", fired, len(a))
	}
}

func TestDelayOnlyRuleSleepsWithoutError(t *testing.T) {
	in := New(1)
	in.Set("p", Rule{Delay: 5 * time.Millisecond})
	start := time.Now()
	if err := in.Fire("p"); err != nil {
		t.Fatalf("delay-only rule errored: %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("delay-only rule did not sleep")
	}
}

func TestSetResetsCountersAndClearDisarms(t *testing.T) {
	in := New(1)
	in.Set("p", Rule{Err: ErrNoSpace})
	_ = in.Fire("p")
	in.Set("p", Rule{Err: ErrNoSpace, Times: 1})
	if in.Fired("p") != 0 {
		t.Fatal("Set did not reset counters")
	}
	in.Clear("p")
	if err := in.Fire("p"); err != nil {
		t.Fatalf("cleared point fired: %v", err)
	}
}
