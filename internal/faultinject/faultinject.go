// Package faultinject is a deterministic fault-injection hook layer:
// production code plants named points (Fire) on its IO paths at zero
// cost — a nil *Injector is a no-op — and robustness tests arm those
// points with rules that delay calls, fail them transiently, corrupt
// them, or exhaust space, probabilistically (seeded, reproducible) or
// on exact call schedules. The engine's disk tier threads an injector
// through its blob reads and writes so overload and degradation tests
// can prove the retry, re-encode and spill-fallthrough paths work
// without ever touching a real failing disk.
package faultinject

import (
	"errors"
	"sync"
	"time"

	"repro/internal/rng"
)

// The standard injected error kinds. Callers of Fire classify with
// errors.Is: a transient error is retryable, a corrupt one is not, and
// no-space fails writes the way a full filesystem would.
var (
	// ErrTransient models a momentary IO failure (EIO, a flaky mount):
	// the underlying data is fine and a retry may succeed.
	ErrTransient = errors.New("faultinject: transient io error")
	// ErrCorrupt models proven data corruption: retrying is pointless
	// and the consumer should invalidate and regenerate.
	ErrCorrupt = errors.New("faultinject: corrupt data")
	// ErrNoSpace models filesystem exhaustion (ENOSPC) on writes.
	ErrNoSpace = errors.New("faultinject: no space left on device")
)

// Rule arms one injection point. The zero value never fires; Err and/or
// Delay give the rule its effect, the remaining fields gate when.
type Rule struct {
	// Err is returned from Fire when the rule fires (nil for
	// delay-only rules, which model slow IO without failing it).
	Err error
	// Delay is slept before returning when the rule fires.
	Delay time.Duration
	// Prob fires the rule on each call with this probability
	// (0 or >= 1 means always, subject to Times/Every). Draws come from
	// the injector's seeded generator, so runs reproduce exactly.
	Prob float64
	// Times caps how often the rule fires (0 = unlimited). A Times: 2
	// transient rule fails the first two calls and heals — the shape
	// retry tests want.
	Times int
	// Every fires only on every Nth call (0 = every call), counting
	// from the first: Every: 3 fires on calls 3, 6, 9, ...
	Every int
}

// ruleState is one point's armed rule plus its call/fire counters.
type ruleState struct {
	rule  Rule
	calls int
	fired int
}

// Injector holds armed rules by point name. It is safe for concurrent
// use; a nil *Injector is valid and never fires.
type Injector struct {
	mu    sync.Mutex
	rng   *rng.RNG
	rules map[string]*ruleState
}

// New returns an injector whose probabilistic draws derive from seed.
func New(seed uint64) *Injector {
	return &Injector{rng: rng.New(seed), rules: make(map[string]*ruleState)}
}

// Set arms (or replaces) the rule at point, resetting its counters.
func (in *Injector) Set(point string, r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[point] = &ruleState{rule: r}
}

// Clear disarms point (a no-op when it was never armed).
func (in *Injector) Clear(point string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.rules, point)
}

// Fire consults the rule at point: when it fires, Fire sleeps the
// rule's Delay and returns its Err (which may be nil for delay-only
// rules). Unarmed points — and every point of a nil Injector — return
// nil immediately, so production paths pay one nil check.
func (in *Injector) Fire(point string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	rs, ok := in.rules[point]
	if !ok {
		in.mu.Unlock()
		return nil
	}
	rs.calls++
	fire := true
	if rs.rule.Times > 0 && rs.fired >= rs.rule.Times {
		fire = false
	}
	if fire && rs.rule.Every > 0 && rs.calls%rs.rule.Every != 0 {
		fire = false
	}
	if fire && rs.rule.Prob > 0 && rs.rule.Prob < 1 && in.rng.Float64() >= rs.rule.Prob {
		fire = false
	}
	if !fire {
		in.mu.Unlock()
		return nil
	}
	rs.fired++
	delay, err := rs.rule.Delay, rs.rule.Err
	in.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	return err
}

// Fired reports how many times point's rule has fired.
func (in *Injector) Fired(point string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if rs, ok := in.rules[point]; ok {
		return rs.fired
	}
	return 0
}

// Calls reports how many times point was consulted (fired or not).
func (in *Injector) Calls(point string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if rs, ok := in.rules[point]; ok {
		return rs.calls
	}
	return 0
}
