// Package server exposes Prompt Cache over HTTP, the shape a serving
// system would embed it in (§6 positions Prompt Cache as a building block
// for LLM serving). It is a thin transport over promptcache.Client:
// schemas are uploaded once, prompts derived from them complete with
// cached attention states, and /v1/sessions carries multi-turn traffic
// over server-held KV state. Request contexts propagate into the engine,
// so a client that disconnects aborts its prefill and decode mid-flight
// — under continuous batching, that evicts the request's scheduler lane
// without disturbing the rest of the fused batch. Every endpoint shares
// one Client, so when the client runs a decode scheduler, mixed traffic
// (/v1/complete, /v1/stream, session sends) fuses into the same batched
// decode steps; /v1/stats reports the scheduler's queue, lanes and
// batch-size histogram.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/promptcache"
)

// errSessionNotFound: a session id that does not exist (or was deleted).
var errSessionNotFound = errors.New("server: session not found")

// DefaultMaxSessions bounds concurrently open sessions: each one holds
// a full KV cache, so an unbounded map is a memory leak under clients
// that create and abandon sessions.
const DefaultMaxSessions = 1024

// DefaultSessionIdleTimeout is how long an untouched session survives
// before the next create may reap it. Without expiry, abandoned
// sessions (clients that never DELETE) would pin cap slots and KV
// memory until restart.
const DefaultSessionIdleTimeout = 30 * time.Minute

// sessionEntry pairs a session with the bookkeeping idle reaping needs:
// lastUsed is stamped when a turn *finishes* (a long decode is activity,
// not idleness), and inflight guards actively-serving sessions from
// being reaped mid-turn.
type sessionEntry struct {
	sess     *promptcache.Session
	lastUsed time.Time
	inflight int
}

// Server is an http.Handler serving a Prompt Cache.
type Server struct {
	client *promptcache.Client
	mux    *http.ServeMux

	// MaxSessions caps open sessions (default DefaultMaxSessions);
	// creates beyond it fail with 503 until one is deleted or expires.
	// Set before serving traffic.
	MaxSessions int
	// SessionIdleTimeout is the idle age past which a session may be
	// reaped (default DefaultSessionIdleTimeout). Reaping is lazy: it
	// runs when a new session is created.
	SessionIdleTimeout time.Duration

	mu       sync.Mutex
	sessions map[string]*sessionEntry
	nextID   int
}

// New builds a server around a prompt-cache client.
func New(client *promptcache.Client) *Server {
	s := &Server{
		client:             client,
		mux:                http.NewServeMux(),
		sessions:           make(map[string]*sessionEntry),
		MaxSessions:        DefaultMaxSessions,
		SessionIdleTimeout: DefaultSessionIdleTimeout,
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /schemas", s.handleListSchemas)
	s.mux.HandleFunc("POST /schemas", s.handleRegisterSchema)
	s.mux.HandleFunc("POST /v1/complete", s.handleComplete)
	s.mux.HandleFunc("POST /v1/complete_batch", s.handleCompleteBatch)
	s.mux.HandleFunc("POST /v1/stream", s.handleStream)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("POST /v1/sessions/{id}/send", s.handleSessionSend)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("GET /vocab", s.handleVocabGet)
	s.mux.HandleFunc("PUT /vocab", s.handleVocabPut)
	s.mux.HandleFunc("POST /vocab", s.handleVocabPut)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// statusFor maps the promptcache error taxonomy to HTTP statuses via
// errors.Is — the transport's whole knowledge of failure modes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, errSessionNotFound), errors.Is(err, promptcache.ErrSessionClosed):
		return http.StatusNotFound
	case errors.Is(err, promptcache.ErrUnknownSchema):
		return http.StatusNotFound
	case errors.Is(err, promptcache.ErrBadPrompt), errors.Is(err, promptcache.ErrBadSchema),
		errors.Is(err, promptcache.ErrBadSnapshot):
		return http.StatusUnprocessableEntity
	case errors.Is(err, promptcache.ErrArgTooLong), errors.Is(err, promptcache.ErrPromptTooLong):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, promptcache.ErrCapacity):
		return http.StatusServiceUnavailable
	case errors.Is(err, promptcache.ErrOverloaded):
		// Admission shed the request; writeErr attaches the Retry-After
		// estimate the error chain carries.
		return http.StatusTooManyRequests
	case errors.Is(err, promptcache.ErrDeadline):
		// Checked before the bare context case: a configured per-request
		// deadline also satisfies context.DeadlineExceeded.
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request (nginx convention)
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "model": s.client.Model().Cfg.Name})
}

// SchemaRequest uploads a PML schema.
type SchemaRequest struct {
	PML string `json:"pml"`
}

// SchemaResponse reports the registered schema's layout.
type SchemaResponse struct {
	Name      string `json:"name"`
	Modules   int    `json:"modules"`
	Positions int    `json:"positions"`
}

func (s *Server) handleListSchemas(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"schemas": s.client.Schemas()})
}

func (s *Server) handleRegisterSchema(w http.ResponseWriter, r *http.Request) {
	var req SchemaRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	info, err := s.client.RegisterSchema(req.PML)
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, SchemaResponse{
		Name: info.Name, Modules: len(info.Modules), Positions: info.Positions,
	})
}

// CompleteRequest asks for a completion of a PML prompt. The embedded
// GenConfig promotes the generation options into the request body —
// max_tokens, stop_token, slo ("interactive"/"batch"; unknown names are
// a 422, not a silent default), and speculation {enabled, max_draft} —
// the same option surface every other entry point takes.
type CompleteRequest struct {
	Prompt string `json:"prompt"`
	// Baseline disables attention reuse (full prefill), for comparisons.
	Baseline bool `json:"baseline"`
	promptcache.GenConfig
}

// CompleteResponse carries the generation and reuse statistics.
type CompleteResponse struct {
	Text         string   `json:"text"`
	CachedTokens int      `json:"cached_tokens"`
	NewTokens    int      `json:"new_tokens"`
	Modules      []string `json:"modules"`
	Scaffolds    []string `json:"scaffolds,omitempty"`
}

func completeResponse(resp *promptcache.Response) CompleteResponse {
	return CompleteResponse{
		Text:         resp.Text,
		CachedTokens: resp.CachedTokens,
		NewTokens:    resp.NewTokens,
		Modules:      resp.Modules,
		Scaffolds:    resp.Scaffolds,
	}
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	s.reapIdle()
	var req CompleteRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, readStatus(err), err)
		return
	}
	resp, err := s.client.Infer(r.Context(), promptcache.Request{
		Prompt:   req.Prompt,
		Baseline: req.Baseline,
		Gen:      req.GenConfig,
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, completeResponse(resp))
}

// streamTokenBuffer bounds how far decoding may run ahead of a stream
// client's reads. Under the decode scheduler, a client that falls
// further behind than this has its lane dropped (generation ends early,
// the done event still flushes) rather than letting its backpressure
// stall the shared decode batch; without a scheduler, generation simply
// paces to the client's reads as before.
const streamTokenBuffer = 256

// handleStream serves a completion as server-sent events: one
// `data: {"token": "..."}` event per generated token, then a final
// `data: {"done": true, ...}` event with the reuse statistics. TTFT is
// visible to clients as the delay before the first event — the quantity
// Prompt Cache improves. A disconnecting client cancels the request
// context, which aborts the decode loop inside the engine (under the
// decode scheduler: evicts the request's lane without disturbing the
// batch); a connected-but-stalled client is dropped once it falls
// streamTokenBuffer tokens behind.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	s.reapIdle()
	var req CompleteRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, readStatus(err), err)
		return
	}
	flusher, canFlush := w.(http.Flusher)
	headerSent := false
	send := func(v any) {
		if !headerSent {
			w.Header().Set("Content-Type", "text/event-stream")
			w.Header().Set("Cache-Control", "no-cache")
			w.WriteHeader(http.StatusOK)
			headerSent = true
		}
		b, _ := json.Marshal(v)
		fmt.Fprintf(w, "data: %s\n\n", b)
		if canFlush {
			flusher.Flush()
		}
	}
	// Token delivery is decoupled from decoding: under the shared decode
	// scheduler the Stream callback runs on the scheduler goroutine, so
	// it must never write to (or block on) the connection — a dead or
	// slow client would stall every other lane in the batch. The
	// callback only hands tokens to a buffered channel; this writer
	// goroutine owns the actual SSE writes.
	tokens := make(chan string, streamTokenBuffer)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for text := range tokens {
			send(map[string]string{"token": text})
		}
	}()
	fused := s.client.SchedulerEnabled()
	resp, err := s.client.Infer(r.Context(), promptcache.Request{
		Prompt:   req.Prompt,
		Baseline: req.Baseline,
		Gen:      req.GenConfig,
		Stream: func(text string) bool {
			// Drop the lane the moment the client disconnects.
			if r.Context().Err() != nil {
				return false
			}
			if !fused {
				// Solo decode: emit runs on this request's own goroutine,
				// so pacing generation to the client's reads (the
				// pre-scheduler behavior) blocks nobody else.
				select {
				case tokens <- text:
					return true
				case <-r.Context().Done():
					return false
				}
			}
			// Fused decode: this callback runs on the shared scheduler
			// goroutine. A client that stops reading must cost its own
			// lane, never the batch — drop rather than block.
			select {
			case tokens <- text:
				return true
			default:
				return false
			}
		},
	})
	close(tokens)
	<-writerDone // all token events flushed; done/error events are ours
	if err != nil {
		if headerSent {
			send(map[string]string{"error": err.Error()})
		} else {
			writeErr(w, statusFor(err), err)
		}
		return
	}
	send(map[string]any{"done": true, "cached_tokens": resp.CachedTokens, "new_tokens": resp.NewTokens})
}

// BatchRequest completes several prompts in one call with module states
// shared across the batch (§3.4). The embedded GenConfig applies to
// every prompt; the batch always rides the batch admission lane.
type BatchRequest struct {
	Prompts []string `json:"prompts"`
	promptcache.GenConfig
}

// BatchResponse returns per-prompt completions plus the sharing effect.
type BatchResponse struct {
	Results       []CompleteResponse `json:"results"`
	SharedModules int                `json:"shared_modules"`
	LogicalBytes  int64              `json:"logical_bytes"`
	PhysicalBytes int64              `json:"physical_bytes"`
	SavingsPct    float64            `json:"savings_pct"`
}

func (s *Server) handleCompleteBatch(w http.ResponseWriter, r *http.Request) {
	s.reapIdle()
	var req BatchRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, readStatus(err), err)
		return
	}
	batch, err := s.client.InferBatch(r.Context(), promptcache.BatchRequest{
		Prompts: req.Prompts,
		Gen:     req.GenConfig,
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	resp := BatchResponse{
		SharedModules: batch.Stats.SharedModules,
		LogicalBytes:  batch.Stats.LogicalBytes,
		PhysicalBytes: batch.Stats.PhysicalBytes,
		SavingsPct:    100 * batch.Stats.Savings(),
	}
	for _, r := range batch.Results {
		resp.Results = append(resp.Results, completeResponse(r))
	}
	writeJSON(w, http.StatusOK, resp)
}

// SessionRequest opens a multi-turn session from a PML prompt. The
// embedded GenConfig becomes the session's defaults for later turns.
type SessionRequest struct {
	Prompt string `json:"prompt"`
	promptcache.GenConfig
}

// SessionResponse reports the session handle plus the first reply.
type SessionResponse struct {
	SessionID string `json:"session_id"`
	CompleteResponse
}

// SendRequest advances a session by one user turn. A non-zero embedded
// GenConfig overrides the session defaults for this turn only.
type SendRequest struct {
	Text string `json:"text"`
	promptcache.GenConfig
}

// SendResponse carries one turn's reply, its reuse accounting (the
// whole prior session counts as reused; only the turn's own text is
// computed), and the session's KV footprint.
type SendResponse struct {
	Text          string `json:"text"`
	CachedTokens  int    `json:"cached_tokens"`
	NewTokens     int    `json:"new_tokens"`
	Turns         int    `json:"turns"`
	SessionTokens int    `json:"session_tokens"`
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, readStatus(err), err)
		return
	}
	// Check the cap before paying for the prefill; recheck at insert.
	if err := s.sessionCapacity(); err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	sess, first, err := s.client.NewSession(r.Context(), promptcache.Request{
		Prompt: req.Prompt,
		Gen:    req.GenConfig,
	})
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	s.mu.Lock()
	victims := s.reapIdleLocked()
	over := len(s.sessions) >= s.MaxSessions
	var id string
	if !over {
		s.nextID++
		id = "s" + strconv.Itoa(s.nextID)
		s.sessions[id] = &sessionEntry{sess: sess, lastUsed: time.Now()}
	}
	s.mu.Unlock()
	closeAll(victims)
	if over {
		_ = sess.Close()
		writeErr(w, statusFor(promptcache.ErrCapacity), s.capacityErr())
		return
	}
	writeJSON(w, http.StatusCreated, SessionResponse{SessionID: id, CompleteResponse: completeResponse(first)})
}

func (s *Server) sessionCapacity() error {
	s.mu.Lock()
	victims := s.reapIdleLocked()
	over := len(s.sessions) >= s.MaxSessions
	s.mu.Unlock()
	closeAll(victims)
	if over {
		return s.capacityErr()
	}
	return nil
}

// reapIdleLocked removes sessions idle past SessionIdleTimeout from the
// registry — so abandoned sessions cannot pin cap slots and KV memory
// forever — and returns them for the caller to Close once s.mu is
// released: Session.Close blocks on the session's own mutex, and holding
// the server mutex across that wait would let one slow turn stall every
// session endpoint. Sessions with a turn in flight are activity, not
// idleness, and are never reaped.
func (s *Server) reapIdleLocked() []*promptcache.Session {
	if s.SessionIdleTimeout <= 0 {
		return nil
	}
	cutoff := time.Now().Add(-s.SessionIdleTimeout)
	var victims []*promptcache.Session
	for id, e := range s.sessions {
		if e.inflight == 0 && e.lastUsed.Before(cutoff) {
			victims = append(victims, e.sess)
			delete(s.sessions, id)
		}
	}
	return victims
}

func closeAll(victims []*promptcache.Session) {
	for _, v := range victims {
		_ = v.Close()
	}
}

func (s *Server) capacityErr() error {
	return fmt.Errorf("%w: %d sessions open; delete one before creating more", promptcache.ErrCapacity, s.MaxSessions)
}

// reapIdle is the unlocked sweep. Every inference and session handler
// calls it (the sweep is a map walk, noise next to a prefill), so
// abandoned sessions are collected as long as any traffic arrives —
// including stateless /v1/complete-only workloads.
func (s *Server) reapIdle() {
	s.mu.Lock()
	victims := s.reapIdleLocked()
	s.mu.Unlock()
	closeAll(victims)
}

// acquireSession sweeps expired sessions, then looks the session up and
// marks it in flight, shielding it from the idle reaper for the
// duration of the turn — one critical section for both.
func (s *Server) acquireSession(id string) (*sessionEntry, error) {
	s.mu.Lock()
	victims := s.reapIdleLocked()
	e, ok := s.sessions[id]
	if ok {
		e.inflight++
	}
	s.mu.Unlock()
	closeAll(victims)
	if !ok {
		return nil, fmt.Errorf("%w: %q", errSessionNotFound, id)
	}
	return e, nil
}

// releaseSession ends a turn: the session becomes reapable again and
// its idle clock restarts from the turn's completion.
func (s *Server) releaseSession(e *sessionEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.inflight--
	e.lastUsed = time.Now()
}

func (s *Server) handleSessionSend(w http.ResponseWriter, r *http.Request) {
	e, err := s.acquireSession(r.PathValue("id"))
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	defer s.releaseSession(e)
	var req SendRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, readStatus(err), err)
		return
	}
	var resp *promptcache.Response
	if req.GenConfig != (promptcache.GenConfig{}) {
		resp, err = e.sess.SendOpts(r.Context(), req.Text, promptcache.Request{Gen: req.GenConfig})
	} else {
		resp, err = e.sess.Send(r.Context(), req.Text)
	}
	if err != nil {
		writeErr(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, SendResponse{
		Text:          resp.Text,
		CachedTokens:  resp.CachedTokens,
		NewTokens:     resp.NewTokens,
		Turns:         e.sess.Turns(),
		SessionTokens: e.sess.CachedTokens(),
	})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	e, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("%w: %q", errSessionNotFound, id))
		return
	}
	_ = e.sess.Close()
	writeJSON(w, http.StatusOK, map[string]string{"status": "closed", "session_id": id})
}

// handleVocabGet exports the tokenizer's learned id→word table, keeping
// decodes human-readable across restarts — the companion to schema-state
// snapshots (a restored server has never Encoded its schema text). The
// dump is buffered so a serialization failure returns a proper status
// instead of corrupting a 200 body.
func (s *Server) handleVocabGet(w http.ResponseWriter, _ *http.Request) {
	var buf bytes.Buffer
	if err := s.client.Engine().Tokenizer().SaveVocab(&buf); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = buf.WriteTo(w)
}

// handleVocabPut merges an exported vocab table into the tokenizer.
func (s *Server) handleVocabPut(w http.ResponseWriter, r *http.Request) {
	if err := s.client.Engine().Tokenizer().LoadVocab(io.LimitReader(r.Body, 16<<20)); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "merged"})
}

// handleStats serializes the client's consolidated Snapshot document
// directly — promptcache.Snapshot's JSON tags are the monitoring
// contract (pinned by the stats-contract golden test); the server only
// contributes its transport-local gauge, open_sessions.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.reapIdle()
	snap := s.client.Snapshot()
	s.mu.Lock()
	snap.OpenSessions = len(s.sessions)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, snap)
}

func readJSON(r *http.Request, dst any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(body, dst)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// readStatus maps a request-body decode failure to its status: body
// errors that carry the promptcache taxonomy (an unknown SLO class name,
// surfaced by SLOClass's UnmarshalJSON) keep their taxonomy status;
// anything else — malformed JSON, wrong types — is a plain 400.
func readStatus(err error) int {
	if errors.Is(err, promptcache.ErrBadPrompt) {
		return statusFor(err)
	}
	return http.StatusBadRequest
}

func writeErr(w http.ResponseWriter, status int, err error) {
	// A shed request's error chain carries the engine's Retry-After
	// estimate; surface it as the standard header, rounded up to whole
	// seconds (never 0 — "retry immediately" would defeat the shed).
	if d, ok := promptcache.RetryAfterHint(err); ok {
		secs := int64((d + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
