// Package server exposes Prompt Cache over HTTP, the shape a serving
// system would embed it in (§6 positions Prompt Cache as a building block
// for LLM serving): schemas are uploaded once, then prompts derived from
// them are completed with cached attention states.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/core"
	"repro/internal/model"
)

// Server is an http.Handler serving a Prompt Cache.
type Server struct {
	cache *core.Cache
	mux   *http.ServeMux

	mu      sync.Mutex
	schemas []string
}

// New builds a server around a prompt cache.
func New(cache *core.Cache) *Server {
	s := &Server{cache: cache, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/schemas", s.handleSchemas)
	s.mux.HandleFunc("/v1/complete", s.handleComplete)
	s.mux.HandleFunc("/v1/complete_batch", s.handleCompleteBatch)
	s.mux.HandleFunc("/v1/stream", s.handleStream)
	s.mux.HandleFunc("/vocab", s.handleVocab)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "model": s.cache.Model().Cfg.Name})
}

// SchemaRequest uploads a PML schema.
type SchemaRequest struct {
	PML string `json:"pml"`
}

// SchemaResponse reports the registered schema's layout.
type SchemaResponse struct {
	Name      string `json:"name"`
	Modules   int    `json:"modules"`
	Positions int    `json:"positions"`
}

func (s *Server) handleSchemas(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.Lock()
		names := append([]string{}, s.schemas...)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]any{"schemas": names})
	case http.MethodPost:
		var req SchemaRequest
		if err := readJSON(r, &req); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		layout, err := s.cache.RegisterSchema(req.PML)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, err)
			return
		}
		s.mu.Lock()
		if !containsStr(s.schemas, layout.Schema.Name) {
			s.schemas = append(s.schemas, layout.Schema.Name)
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, SchemaResponse{
			Name: layout.Schema.Name, Modules: len(layout.Order), Positions: layout.TotalLen,
		})
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or POST"))
	}
}

// CompleteRequest asks for a completion of a PML prompt.
type CompleteRequest struct {
	Prompt    string `json:"prompt"`
	MaxTokens int    `json:"max_tokens"`
	// Baseline disables attention reuse (full prefill), for comparisons.
	Baseline bool `json:"baseline"`
}

// CompleteResponse carries the generation and reuse statistics.
type CompleteResponse struct {
	Text         string   `json:"text"`
	CachedTokens int      `json:"cached_tokens"`
	NewTokens    int      `json:"new_tokens"`
	Modules      []string `json:"modules"`
	Scaffolds    []string `json:"scaffolds,omitempty"`
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req CompleteRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var (
		res *core.ServeResult
		err error
	)
	if req.Baseline {
		res, err = s.cache.BaselineServe(req.Prompt)
	} else {
		res, err = s.cache.Serve(req.Prompt, core.ServeOpts{})
	}
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	text, err := s.cache.GenerateText(res, model.GenerateOpts{MaxTokens: req.MaxTokens})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, CompleteResponse{
		Text:         text,
		CachedTokens: res.CachedTokens,
		NewTokens:    res.NewTokens,
		Modules:      res.Modules,
		Scaffolds:    res.Scaffolds,
	})
}

// handleStream serves a completion as server-sent events: one
// `data: {"token": "..."}` event per generated token, then a final
// `data: {"done": true, ...}` event with the reuse statistics. TTFT is
// visible to clients as the delay before the first event — the quantity
// Prompt Cache improves.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req CompleteRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.cache.Serve(req.Prompt, core.ServeOpts{})
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	send := func(v any) {
		b, _ := json.Marshal(v)
		fmt.Fprintf(w, "data: %s\n\n", b)
		if canFlush {
			flusher.Flush()
		}
	}
	_, err = s.cache.GenerateStream(res, model.GenerateOpts{MaxTokens: req.MaxTokens}, func(text string) bool {
		send(map[string]string{"token": text})
		return r.Context().Err() == nil
	})
	if err != nil {
		send(map[string]string{"error": err.Error()})
		return
	}
	send(map[string]any{"done": true, "cached_tokens": res.CachedTokens, "new_tokens": res.NewTokens})
}

// BatchRequest completes several prompts in one call with module states
// shared across the batch (§3.4).
type BatchRequest struct {
	Prompts   []string `json:"prompts"`
	MaxTokens int      `json:"max_tokens"`
}

// BatchResponse returns per-prompt completions plus the sharing effect.
type BatchResponse struct {
	Results       []CompleteResponse `json:"results"`
	SharedModules int                `json:"shared_modules"`
	LogicalBytes  int64              `json:"logical_bytes"`
	PhysicalBytes int64              `json:"physical_bytes"`
	SavingsPct    float64            `json:"savings_pct"`
}

func (s *Server) handleCompleteBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	var req BatchRequest
	if err := readJSON(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	results, stats, err := s.cache.ServeBatch(req.Prompts, core.ServeOpts{})
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	resp := BatchResponse{
		SharedModules: stats.SharedModules,
		LogicalBytes:  stats.LogicalBytes,
		PhysicalBytes: stats.PhysicalBytes,
		SavingsPct:    100 * stats.Savings(),
	}
	for _, res := range results {
		text, err := s.cache.GenerateText(res, model.GenerateOpts{MaxTokens: req.MaxTokens})
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		resp.Results = append(resp.Results, CompleteResponse{
			Text:         text,
			CachedTokens: res.CachedTokens,
			NewTokens:    res.NewTokens,
			Modules:      res.Modules,
			Scaffolds:    res.Scaffolds,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleVocab exports (GET) or merges (PUT) the tokenizer's learned
// id→word table, keeping decodes human-readable across restarts — the
// companion to schema-state snapshots (a restored server has never
// Encoded its schema text).
func (s *Server) handleVocab(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		if err := s.cache.Tokenizer().SaveVocab(w); err != nil {
			// Headers are out; best effort.
			fmt.Fprintf(w, `{"error":%q}`, err.Error())
		}
	case http.MethodPut, http.MethodPost:
		if err := s.cache.Tokenizer().LoadVocab(io.LimitReader(r.Body, 16<<20)); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "merged"})
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or PUT"))
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.cache.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"modules_encoded":  st.ModulesEncoded,
		"modules_reused":   st.ModulesReused,
		"modules_evicted":  st.ModulesEvicted,
		"modules_reloaded": st.ModulesReloaded,
		"tokens_encoded":   st.TokensEncoded,
		"tokens_reused":    st.TokensReused,
		"pool_bytes":       s.cache.PoolUsed(),
	})
}

func readJSON(r *http.Request, dst any) error {
	body, err := io.ReadAll(io.LimitReader(r.Body, 4<<20))
	if err != nil {
		return err
	}
	return json.Unmarshal(body, dst)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
