package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+2048, 11))
	if err != nil {
		t.Fatal(err)
	}
	return New(promptcache.New(m))
}

func doJSON(t *testing.T, s *Server, method, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var out map[string]any
	// The mux's automatic 405 replies are plain text; everything the
	// server itself writes is JSON.
	if rec.Body.Len() > 0 && strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatalf("bad JSON response %q: %v", rec.Body.String(), err)
		}
	}
	return rec, out
}

const testSchema = `<schema name="docs">
  <module name="contract">The tenant pays rent monthly and waters the plants weekly.</module>
  <module name="rider">The rider adds parking rights for one vehicle.</module>
</schema>`

func TestHealth(t *testing.T) {
	s := newServer(t)
	rec, out := doJSON(t, s, http.MethodGet, "/healthz", nil)
	if rec.Code != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("health = %d %v", rec.Code, out)
	}
}

func TestRegisterAndListSchemas(t *testing.T) {
	s := newServer(t)
	rec, out := doJSON(t, s, http.MethodPost, "/schemas", SchemaRequest{PML: testSchema})
	if rec.Code != http.StatusOK {
		t.Fatalf("register = %d %v", rec.Code, out)
	}
	if out["name"] != "docs" || out["modules"].(float64) != 2 {
		t.Fatalf("register response %v", out)
	}
	_, list := doJSON(t, s, http.MethodGet, "/schemas", nil)
	schemas := list["schemas"].([]any)
	if len(schemas) != 1 || schemas[0] != "docs" {
		t.Fatalf("list = %v", list)
	}
	// Re-register same schema: no duplicate in list.
	doJSON(t, s, http.MethodPost, "/schemas", SchemaRequest{PML: testSchema})
	_, list2 := doJSON(t, s, http.MethodGet, "/schemas", nil)
	if len(list2["schemas"].([]any)) != 1 {
		t.Fatalf("duplicate schema listed: %v", list2)
	}
}

func TestRegisterInvalidSchema(t *testing.T) {
	s := newServer(t)
	rec, out := doJSON(t, s, http.MethodPost, "/schemas", SchemaRequest{PML: "<bogus/>"})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("invalid schema = %d %v", rec.Code, out)
	}
	if out["error"] == "" {
		t.Fatal("missing error message")
	}
}

func TestRegisterBadJSON(t *testing.T) {
	s := newServer(t)
	req := httptest.NewRequest(http.MethodPost, "/schemas", bytes.NewBufferString("{nope"))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad json = %d", rec.Code)
	}
}

func TestCompleteCachedAndBaseline(t *testing.T) {
	s := newServer(t)
	doJSON(t, s, http.MethodPost, "/schemas", SchemaRequest{PML: testSchema})

	prompt := `<prompt schema="docs"><contract/>Summarize the duties.</prompt>`
	rec, out := doJSON(t, s, http.MethodPost, "/v1/complete", CompleteRequest{Prompt: prompt, GenConfig: promptcache.GenConfig{MaxTokens: 8}})
	if rec.Code != http.StatusOK {
		t.Fatalf("complete = %d %v", rec.Code, out)
	}
	if out["cached_tokens"].(float64) <= 0 {
		t.Fatalf("no reuse reported: %v", out)
	}
	mods := out["modules"].([]any)
	if len(mods) != 1 || mods[0] != "contract" {
		t.Fatalf("modules = %v", mods)
	}

	rec2, out2 := doJSON(t, s, http.MethodPost, "/v1/complete", CompleteRequest{Prompt: prompt, Baseline: true, GenConfig: promptcache.GenConfig{MaxTokens: 8}})
	if rec2.Code != http.StatusOK {
		t.Fatalf("baseline = %d %v", rec2.Code, out2)
	}
	if out2["cached_tokens"].(float64) != 0 {
		t.Fatalf("baseline should not reuse: %v", out2)
	}
	// Single-module prompt: cached output must equal baseline output.
	if out["text"] != out2["text"] {
		t.Fatalf("cached %q != baseline %q", out["text"], out2["text"])
	}
}

func TestCompleteUnknownSchema(t *testing.T) {
	s := newServer(t)
	rec, _ := doJSON(t, s, http.MethodPost, "/v1/complete", CompleteRequest{Prompt: `<prompt schema="ghost">x</prompt>`})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown schema = %d", rec.Code)
	}
}

// TestErrorStatusMapping: each sentinel in the promptcache taxonomy maps
// to its intended HTTP status via errors.Is, not string matching.
func TestErrorStatusMapping(t *testing.T) {
	s := newServer(t)
	doJSON(t, s, http.MethodPost, "/schemas", SchemaRequest{PML: testSchema})
	rec, out := doJSON(t, s, http.MethodPost, "/schemas", SchemaRequest{PML: `<schema name="param">
	  <module name="lease">The lease runs for <param name="term" len="3"/> from signing.</module>
	</schema>`})
	if rec.Code != http.StatusOK {
		t.Fatalf("param schema = %d %v", rec.Code, out)
	}
	padding := strings.Repeat("word ", 40)
	cases := []struct {
		name   string
		prompt string
		want   int
	}{
		{"unknown schema", `<prompt schema="ghost">x</prompt>`, http.StatusNotFound},
		{"unparsable prompt", `<prompt schema=`, http.StatusUnprocessableEntity},
		{"unknown module", `<prompt schema="docs"><ghost/>x</prompt>`, http.StatusUnprocessableEntity},
		{"no new tokens", `<prompt schema="docs"><contract/></prompt>`, http.StatusUnprocessableEntity},
		{"arg too long", `<prompt schema="param"><lease term="` + padding + `"/>x</prompt>`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		rec, out := doJSON(t, s, http.MethodPost, "/v1/complete", CompleteRequest{Prompt: tc.prompt})
		if rec.Code != tc.want {
			t.Errorf("%s: status = %d, want %d (%v)", tc.name, rec.Code, tc.want, out)
		}
	}
}

func TestCompleteMethodNotAllowed(t *testing.T) {
	s := newServer(t)
	rec, _ := doJSON(t, s, http.MethodGet, "/v1/complete", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET complete = %d", rec.Code)
	}
}

func TestCompleteBatch(t *testing.T) {
	s := newServer(t)
	doJSON(t, s, http.MethodPost, "/schemas", SchemaRequest{PML: testSchema})
	req := BatchRequest{
		Prompts: []string{
			`<prompt schema="docs"><contract/>Summarize the duties.</prompt>`,
			`<prompt schema="docs"><contract/><rider/>What about parking?</prompt>`,
			`<prompt schema="docs"><contract/>List weekly chores.</prompt>`,
		},
		GenConfig: promptcache.GenConfig{MaxTokens: 6},
	}
	rec, out := doJSON(t, s, http.MethodPost, "/v1/complete_batch", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch = %d %v", rec.Code, out)
	}
	results := out["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	if out["shared_modules"].(float64) == 0 {
		t.Fatalf("no sharing: %v", out)
	}
	if out["physical_bytes"].(float64) >= out["logical_bytes"].(float64) {
		t.Fatalf("sharing should shrink physical bytes: %v", out)
	}
	if out["savings_pct"].(float64) <= 0 {
		t.Fatalf("savings = %v", out["savings_pct"])
	}
}

func TestCompleteBatchErrors(t *testing.T) {
	s := newServer(t)
	rec, _ := doJSON(t, s, http.MethodPost, "/v1/complete_batch", BatchRequest{})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("empty batch = %d", rec.Code)
	}
	rec, _ = doJSON(t, s, http.MethodGet, "/v1/complete_batch", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET batch = %d", rec.Code)
	}
}

func TestVocabEndpoint(t *testing.T) {
	// Server A learns words by registering a schema; its vocab dump makes
	// server B (same weights, fresh tokenizer) decode identically.
	a := newServer(t)
	doJSON(t, a, http.MethodPost, "/schemas", SchemaRequest{PML: testSchema})
	prompt := `<prompt schema="docs"><contract/>Summarize the duties.</prompt>`
	_, outA := doJSON(t, a, http.MethodPost, "/v1/complete", CompleteRequest{Prompt: prompt, GenConfig: promptcache.GenConfig{MaxTokens: 8}})

	recDump := httptest.NewRecorder()
	a.ServeHTTP(recDump, httptest.NewRequest(http.MethodGet, "/vocab", nil))
	if recDump.Code != http.StatusOK {
		t.Fatalf("vocab GET = %d", recDump.Code)
	}

	b := newServer(t)
	recPut := httptest.NewRecorder()
	b.ServeHTTP(recPut, httptest.NewRequest(http.MethodPut, "/vocab", bytes.NewReader(recDump.Body.Bytes())))
	if recPut.Code != http.StatusOK {
		t.Fatalf("vocab PUT = %d %s", recPut.Code, recPut.Body.String())
	}
	doJSON(t, b, http.MethodPost, "/schemas", SchemaRequest{PML: testSchema})
	_, outB := doJSON(t, b, http.MethodPost, "/v1/complete", CompleteRequest{Prompt: prompt, GenConfig: promptcache.GenConfig{MaxTokens: 8}})
	if outA["text"] != outB["text"] {
		t.Fatalf("decodes differ after vocab transfer: %q vs %q", outA["text"], outB["text"])
	}
	// Bad payload rejected.
	recBad := httptest.NewRecorder()
	b.ServeHTTP(recBad, httptest.NewRequest(http.MethodPut, "/vocab", bytes.NewBufferString("{broken")))
	if recBad.Code != http.StatusBadRequest {
		t.Fatalf("bad vocab = %d", recBad.Code)
	}
}

func TestStreamEndpoint(t *testing.T) {
	s := newServer(t)
	doJSON(t, s, http.MethodPost, "/schemas", SchemaRequest{PML: testSchema})
	var buf bytes.Buffer
	_ = json.NewEncoder(&buf).Encode(CompleteRequest{
		Prompt:    `<prompt schema="docs"><contract/>Summarize.</prompt>`,
		GenConfig: promptcache.GenConfig{MaxTokens: 5},
	})
	req := httptest.NewRequest(http.MethodPost, "/v1/stream", &buf)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stream = %d %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	events := 0
	sawDone := false
	for _, line := range splitLines(body) {
		if len(line) > 6 && line[:6] == "data: " {
			events++
			var m map[string]any
			if err := json.Unmarshal([]byte(line[6:]), &m); err != nil {
				t.Fatalf("bad event %q: %v", line, err)
			}
			if m["done"] == true {
				sawDone = true
				if m["cached_tokens"].(float64) <= 0 {
					t.Fatalf("done event lacks reuse stats: %v", m)
				}
			}
		}
	}
	if events < 2 || !sawDone {
		t.Fatalf("events=%d done=%v body=%q", events, sawDone, body)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func TestStreamErrors(t *testing.T) {
	s := newServer(t)
	rec, _ := doJSON(t, s, http.MethodPost, "/v1/stream", CompleteRequest{Prompt: `<prompt schema="ghost">x</prompt>`})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown schema stream = %d", rec.Code)
	}
	rec, _ = doJSON(t, s, http.MethodGet, "/v1/stream", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET stream = %d", rec.Code)
	}
}

// TestSessionLifecycle: create a session, advance it two turns, delete
// it, and verify the handle is gone.
func TestSessionLifecycle(t *testing.T) {
	s := newServer(t)
	doJSON(t, s, http.MethodPost, "/schemas", SchemaRequest{PML: testSchema})

	rec, out := doJSON(t, s, http.MethodPost, "/v1/sessions", SessionRequest{
		Prompt:    `<prompt schema="docs"><contract/>Summarize the duties.</prompt>`,
		GenConfig: promptcache.GenConfig{MaxTokens: 6},
	})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create = %d %v", rec.Code, out)
	}
	id, _ := out["session_id"].(string)
	if id == "" || out["text"] == "" {
		t.Fatalf("create response %v", out)
	}
	if out["cached_tokens"].(float64) <= 0 {
		t.Fatalf("session did not reuse: %v", out)
	}

	var lastTokens float64
	for turn, text := range []string{"What about the garden?", "And the rent due date?"} {
		rec, out := doJSON(t, s, http.MethodPost, "/v1/sessions/"+id+"/send", SendRequest{Text: text})
		if rec.Code != http.StatusOK {
			t.Fatalf("send %d = %d %v", turn, rec.Code, out)
		}
		if out["turns"].(float64) != float64(turn+1) {
			t.Fatalf("turns = %v after send %d", out["turns"], turn)
		}
		if st := out["session_tokens"].(float64); st <= lastTokens {
			t.Fatalf("session KV should grow: %v -> %v", lastTokens, st)
		} else {
			lastTokens = st
		}
	}

	rec, out = doJSON(t, s, http.MethodDelete, "/v1/sessions/"+id, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete = %d %v", rec.Code, out)
	}
	rec, _ = doJSON(t, s, http.MethodPost, "/v1/sessions/"+id+"/send", SendRequest{Text: "gone?"})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("send after delete = %d", rec.Code)
	}
	rec, _ = doJSON(t, s, http.MethodDelete, "/v1/sessions/"+id, nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("double delete = %d", rec.Code)
	}
}

// TestSessionCap: creates beyond MaxSessions fail with 503 until a
// session is deleted.
func TestSessionCap(t *testing.T) {
	s := newServer(t)
	s.MaxSessions = 1
	doJSON(t, s, http.MethodPost, "/schemas", SchemaRequest{PML: testSchema})
	create := func() (*httptest.ResponseRecorder, map[string]any) {
		return doJSON(t, s, http.MethodPost, "/v1/sessions", SessionRequest{
			Prompt:    `<prompt schema="docs"><contract/>Hi.</prompt>`,
			GenConfig: promptcache.GenConfig{MaxTokens: 2},
		})
	}
	rec, out := create()
	if rec.Code != http.StatusCreated {
		t.Fatalf("first create = %d %v", rec.Code, out)
	}
	id := out["session_id"].(string)
	rec, _ = create()
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("over-cap create = %d", rec.Code)
	}
	doJSON(t, s, http.MethodDelete, "/v1/sessions/"+id, nil)
	rec, _ = create()
	if rec.Code != http.StatusCreated {
		t.Fatalf("create after delete = %d", rec.Code)
	}
}

// TestSessionIdleReaping: abandoned sessions free their cap slot once
// idle past SessionIdleTimeout, instead of jamming creates forever.
func TestSessionIdleReaping(t *testing.T) {
	s := newServer(t)
	s.MaxSessions = 1
	s.SessionIdleTimeout = time.Nanosecond
	doJSON(t, s, http.MethodPost, "/schemas", SchemaRequest{PML: testSchema})
	create := func() (*httptest.ResponseRecorder, map[string]any) {
		return doJSON(t, s, http.MethodPost, "/v1/sessions", SessionRequest{
			Prompt:    `<prompt schema="docs"><contract/>Hi.</prompt>`,
			GenConfig: promptcache.GenConfig{MaxTokens: 2},
		})
	}
	rec, out := create()
	if rec.Code != http.StatusCreated {
		t.Fatalf("first create = %d %v", rec.Code, out)
	}
	old := out["session_id"].(string)
	time.Sleep(time.Millisecond) // let the first session cross the idle cutoff
	rec, _ = create()
	if rec.Code != http.StatusCreated {
		t.Fatalf("create after idle expiry = %d (abandoned session jammed the cap)", rec.Code)
	}
	rec, _ = doJSON(t, s, http.MethodPost, "/v1/sessions/"+old+"/send", SendRequest{Text: "still there?"})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("reaped session should be gone: %d", rec.Code)
	}
}

// TestReapSkipsInFlightSession: a session with a turn in flight is
// activity, not idleness — the reaper must not close it even when its
// lastUsed is past the cutoff.
func TestReapSkipsInFlightSession(t *testing.T) {
	s := newServer(t)
	s.MaxSessions = 1
	s.SessionIdleTimeout = time.Hour
	doJSON(t, s, http.MethodPost, "/schemas", SchemaRequest{PML: testSchema})
	create := func() (*httptest.ResponseRecorder, map[string]any) {
		return doJSON(t, s, http.MethodPost, "/v1/sessions", SessionRequest{
			Prompt:    `<prompt schema="docs"><contract/>Hi.</prompt>`,
			GenConfig: promptcache.GenConfig{MaxTokens: 2},
		})
	}
	rec, out := create()
	if rec.Code != http.StatusCreated {
		t.Fatalf("create = %d %v", rec.Code, out)
	}
	id := out["session_id"].(string)
	// Simulate a long-running turn holding the session, then shrink the
	// timeout so the session is nominally idle-expired mid-turn.
	e, err := s.acquireSession(id)
	if err != nil {
		t.Fatal(err)
	}
	s.SessionIdleTimeout = time.Nanosecond
	time.Sleep(time.Millisecond) // well past the idle cutoff
	rec, _ = create()
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("in-flight session was reaped: create = %d", rec.Code)
	}
	s.releaseSession(e)
	time.Sleep(time.Millisecond) // now idle past the cutoff again
	rec, _ = create()
	if rec.Code != http.StatusCreated {
		t.Fatalf("released idle session not reaped: create = %d", rec.Code)
	}
}

func TestSessionUnknownSchema(t *testing.T) {
	s := newServer(t)
	rec, _ := doJSON(t, s, http.MethodPost, "/v1/sessions", SessionRequest{Prompt: `<prompt schema="ghost">x</prompt>`})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("session unknown schema = %d", rec.Code)
	}
}

func TestStats(t *testing.T) {
	s := newServer(t)
	doJSON(t, s, http.MethodPost, "/schemas", SchemaRequest{PML: testSchema})
	prompt := `<prompt schema="docs"><contract/>Summarize.</prompt>`
	doJSON(t, s, http.MethodPost, "/v1/complete", CompleteRequest{Prompt: prompt, GenConfig: promptcache.GenConfig{MaxTokens: 4}})
	doJSON(t, s, http.MethodPost, "/v1/complete", CompleteRequest{Prompt: prompt, GenConfig: promptcache.GenConfig{MaxTokens: 4}})
	_, out := doJSON(t, s, http.MethodGet, "/stats", nil)
	if out["modules_encoded"].(float64) < 2 {
		t.Fatalf("stats = %v", out)
	}
	if out["modules_reused"].(float64) == 0 {
		t.Fatalf("no reuse counted: %v", out)
	}
	if out["tokens_reused"].(float64) <= 0 {
		t.Fatalf("no token reuse counted: %v", out)
	}
}

// newSchedServer builds a server whose client runs the continuous-
// batching decode scheduler, returning both so tests can observe lanes.
func newSchedServer(t *testing.T) (*Server, *promptcache.Client) {
	t.Helper()
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+2048, 11))
	if err != nil {
		t.Fatal(err)
	}
	client := promptcache.New(m, promptcache.WithDecodeScheduler(4))
	return New(client), client
}

// TestStreamClientDisconnectRetiresLane is the regression test for
// streaming under continuous batching: a client that kills its SSE
// connection mid-reply must have its scheduler lane retired promptly
// (via r.Context() or the emit refusal), not decode on toward
// max_tokens while other lanes share its batch.
func TestStreamClientDisconnectRetiresLane(t *testing.T) {
	s, client := newSchedServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	var buf bytes.Buffer
	_ = json.NewEncoder(&buf).Encode(SchemaRequest{PML: testSchema})
	if resp, err := ts.Client().Post(ts.URL+"/schemas", "application/json", &buf); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %v %v", err, resp)
	}

	// max_tokens asks for far more decode than MaxSeq even allows; only a
	// prompt per-lane abort keeps tokens_decoded small.
	buf.Reset()
	_ = json.NewEncoder(&buf).Encode(CompleteRequest{
		Prompt:    `<prompt schema="docs"><contract/>Summarize at length.</prompt>`,
		GenConfig: promptcache.GenConfig{MaxTokens: 1 << 20},
	})
	resp, err := ts.Client().Post(ts.URL+"/v1/stream", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Read one token event, then kill the connection.
	one := make([]byte, 64)
	if _, err := resp.Body.Read(one); err != nil {
		t.Fatalf("first event: %v", err)
	}
	resp.Body.Close()

	deadline := time.Now().Add(15 * time.Second)
	for {
		st := client.SchedulerStats()
		if st.LanesJoined > 0 && st.LanesJoined == st.LanesRetired && st.ActiveLanes == 0 && st.QueueDepth == 0 {
			if st.TokensDecoded > 4000 {
				t.Fatalf("lane decoded %d tokens after disconnect; abort was not prompt", st.TokensDecoded)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("lane never retired after client disconnect: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStatsSchedulerBlock: /v1/stats (and /stats) must expose the decode
// scheduler's observability block when the scheduler is enabled, and
// omit it when it is not.
func TestStatsSchedulerBlock(t *testing.T) {
	s, _ := newSchedServer(t)
	doJSON(t, s, http.MethodPost, "/schemas", SchemaRequest{PML: testSchema})
	prompt := `<prompt schema="docs"><contract/>Summarize.</prompt>`
	doJSON(t, s, http.MethodPost, "/v1/complete", CompleteRequest{Prompt: prompt, GenConfig: promptcache.GenConfig{MaxTokens: 4}})
	_, out := doJSON(t, s, http.MethodGet, "/v1/stats", nil)
	sched, ok := out["scheduler"].(map[string]any)
	if !ok {
		t.Fatalf("no scheduler block in /v1/stats: %v", out)
	}
	if sched["max_batch"].(float64) != 4 {
		t.Fatalf("scheduler block = %v", sched)
	}
	if sched["tokens_decoded"].(float64) != 4 {
		t.Fatalf("tokens_decoded = %v, want 4", sched["tokens_decoded"])
	}
	if sched["lanes_joined"].(float64) != 1 || sched["lanes_retired"].(float64) != 1 {
		t.Fatalf("lane lifecycle: %v", sched)
	}
	hist, ok := sched["batch_hist"].([]any)
	if !ok || len(hist) != 4 || hist[0].(float64) == 0 {
		t.Fatalf("batch_hist = %v", sched["batch_hist"])
	}

	// Unscheduled server: no block.
	plain := newServer(t)
	doJSON(t, plain, http.MethodPost, "/schemas", SchemaRequest{PML: testSchema})
	_, out = doJSON(t, plain, http.MethodGet, "/v1/stats", nil)
	if _, has := out["scheduler"]; has {
		t.Fatalf("scheduler block present without scheduler: %v", out)
	}
}

// TestStatsTierCounters: /v1/stats exposes the storage-tier block, and a
// disk spill followed by a promoting serve is visible in it — the
// eviction acceptance path seen from the transport.
func TestStatsTierCounters(t *testing.T) {
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+2048, 23))
	if err != nil {
		t.Fatal(err)
	}
	probe := promptcache.New(m)
	if _, err := probe.RegisterSchema(testSchema); err != nil {
		t.Fatal(err)
	}
	need := probe.Engine().PoolUsed()

	dir := t.TempDir()
	// One byte short of the full schema: the pool holds either module
	// but never both, so registration spills and each serve promotes.
	client := promptcache.New(m,
		promptcache.WithDeviceCapacity(need-1),
		promptcache.WithDiskTier(dir, promptcache.CodecFP32),
	)
	s := New(client)
	rec, _ := doJSON(t, s, http.MethodPost, "/schemas", SchemaRequest{PML: testSchema})
	if rec.Code != http.StatusOK {
		t.Fatalf("register: %d %s", rec.Code, rec.Body.String())
	}

	rec, out := doJSON(t, s, http.MethodGet, "/v1/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	tiers, ok := out["tiers"].(map[string]any)
	if !ok {
		t.Fatalf("no tiers block in %v", out)
	}
	if tiers["modules_spilled"].(float64) == 0 {
		t.Fatalf("registration over a tight pool should spill: %v", tiers)
	}
	if tiers["disk_bytes"].(float64) == 0 || tiers["disk_modules"].(float64) == 0 {
		t.Fatalf("disk occupancy should be nonzero: %v", tiers)
	}

	// Serving both modules forces at least one disk promotion; no 503,
	// no re-encode.
	for _, mod := range []string{"contract", "rider"} {
		rec, _ = doJSON(t, s, http.MethodPost, "/v1/complete", CompleteRequest{
			Prompt:    `<prompt schema="docs"><` + mod + `/><user>Summarize.</user></prompt>`,
			GenConfig: promptcache.GenConfig{MaxTokens: 4},
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("complete %s: %d %s", mod, rec.Code, rec.Body.String())
		}
	}
	_, out = doJSON(t, s, http.MethodGet, "/v1/stats", nil)
	tiers = out["tiers"].(map[string]any)
	if tiers["disk_hits"].(float64) == 0 {
		t.Fatalf("serving spilled modules should promote from disk: %v", tiers)
	}
	if tiers["tier_account_errors"].(float64) != 0 {
		t.Fatalf("tier accounting drifted: %v", tiers)
	}
	if out["modules_reloaded"].(float64) != 0 {
		t.Fatalf("disk tier should prevent re-encodes: %v", out)
	}
}
