package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

// Overload acceptance: a storm well past capacity must shed with 429 +
// Retry-After — never hang, never collapse, never leak — and the
// admission books must reconcile exactly at quiescence.

// newAdmitServer builds a server whose client admits at most slots
// concurrent requests with queue more waiting.
func newAdmitServer(t *testing.T, slots, queue int, deadline time.Duration) *Server {
	t.Helper()
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+2048, 11))
	if err != nil {
		t.Fatal(err)
	}
	client := promptcache.New(m, promptcache.WithAdmission(promptcache.AdmissionConfig{
		MaxConcurrent:       slots,
		MaxQueue:            queue,
		InteractiveDeadline: deadline,
	}))
	s := New(client)
	doJSON(t, s, http.MethodPost, "/schemas", SchemaRequest{PML: testSchema})
	return s
}

// checkGoroutines asserts the goroutine count settles back to around
// its baseline — the overload paths must not strand waiters or writer
// goroutines. Polling bounds scheduler/timer teardown races.
func checkGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= baseline+3 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutines leaked: %d -> %d\n%s", baseline, n, buf[:runtime.Stack(buf, true)])
}

// TestOverloadStormShedsWith429: with the server saturated (every slot
// and queue position held by long-running requests), an 8×-capacity
// storm must shed every arrival with 429 + a positive integer
// Retry-After — never hang, never 5xx — the holders all finish 200, the
// admission counters reconcile exactly, and no goroutine outlives the
// storm.
func TestOverloadStormShedsWith429(t *testing.T) {
	const slots, queue = 2, 2
	s := newAdmitServer(t, slots, queue, 0)
	baseline := runtime.NumGoroutine()
	prompt := `<prompt schema="docs"><contract/>Summarize the duties please.</prompt>`

	post := func(maxTokens int) (int, string) {
		body, _ := json.Marshal(CompleteRequest{Prompt: prompt, GenConfig: promptcache.GenConfig{MaxTokens: maxTokens}})
		req := httptest.NewRequest(http.MethodPost, "/v1/complete", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		return rec.Code, rec.Header().Get("Retry-After")
	}

	// Saturate: slots+queue holders, each decoding a long reply. Wait
	// until admission confirms the system is full before storming.
	holderCodes := make([]int, slots+queue)
	var holders sync.WaitGroup
	for i := range holderCodes {
		holders.Add(1)
		go func(i int) {
			defer holders.Done()
			// Long enough that the in-process shed storm (microseconds per
			// rejection) lands while these still decode; short enough to
			// keep the race-detector run fast.
			holderCodes[i], _ = post(400)
		}(i)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := s.client.AdmissionStats()
		if st.Inflight == slots && st.QueueDepth == queue {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if st := s.client.AdmissionStats(); st.Inflight != slots || st.QueueDepth != queue {
		t.Fatalf("saturation never reached: %+v", st)
	}

	// The storm: 8× capacity while the system is full. Sheds are
	// immediate (no queue slot to wait in), so they all land while the
	// holders are still decoding.
	const storm = (slots + queue) * 8
	type result struct {
		code       int
		retryAfter string
	}
	results := make([]result, storm)
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, ra := post(4)
			results[i] = result{code, ra}
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r.code != http.StatusTooManyRequests {
			t.Fatalf("storm request %d: status %d, want 429 from a saturated server", i, r.code)
		}
		secs, err := strconv.Atoi(r.retryAfter)
		if err != nil || secs < 1 {
			t.Fatalf("storm request %d: Retry-After = %q, want positive integer seconds", i, r.retryAfter)
		}
	}
	holders.Wait()
	for i, code := range holderCodes {
		if code != http.StatusOK {
			t.Fatalf("holder %d: status %d, want 200 — overload must not fail admitted work", i, code)
		}
	}
	ok200, shed429 := len(holderCodes), storm

	// Exact reconciliation at quiescence, via the public stats surface:
	// every arrival is admitted or shed (nothing cancels here), and every
	// admit completed and released its slot.
	_, out := doJSON(t, s, http.MethodGet, "/v1/stats", nil)
	adm, ok := out["admission"].(map[string]any)
	if !ok {
		t.Fatalf("no admission block: %v", out)
	}
	num := func(class, field string) int {
		return int(adm[class].(map[string]any)[field].(float64))
	}
	admitted := num("interactive", "admitted") + num("batch", "admitted")
	shed := num("interactive", "shed") + num("batch", "shed")
	completed := num("interactive", "completed") + num("batch", "completed")
	canceled := num("interactive", "canceled") + num("batch", "canceled")
	if admitted != ok200 || shed != shed429 || canceled != 0 {
		t.Fatalf("books don't match observed statuses: admitted=%d shed=%d canceled=%d vs %d ok / %d shed",
			admitted, shed, canceled, ok200, shed429)
	}
	if admitted != completed {
		t.Fatalf("admitted %d != completed %d at quiescence", admitted, completed)
	}
	if int(adm["inflight"].(float64)) != 0 || int(adm["queue_depth"].(float64)) != 0 {
		t.Fatalf("slots leaked: %v", adm)
	}
	checkGoroutines(t, baseline)
}

// TestOverloadStreamShedsBeforeSSE: a shed streaming request gets a
// proper 429 + Retry-After status reply, not a broken event stream.
func TestOverloadStreamShedsBeforeSSE(t *testing.T) {
	s := newAdmitServer(t, 1, 1, 0)
	baseline := runtime.NumGoroutine()

	// Saturate: one long completion holds the slot, one fills the queue
	// (MaxTokens 200 keeps them decoding well past the probe below).
	prompt := `<prompt schema="docs"><contract/>Summarize the duties please.</prompt>`
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(CompleteRequest{Prompt: prompt, GenConfig: promptcache.GenConfig{MaxTokens: 200}})
			req := httptest.NewRequest(http.MethodPost, "/v1/complete", bytes.NewReader(body))
			s.ServeHTTP(httptest.NewRecorder(), req)
		}()
	}
	// Wait until both are visible to admission (1 inflight + 1 queued).
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		_, out := doJSON(t, s, http.MethodGet, "/v1/stats", nil)
		if adm, ok := out["admission"].(map[string]any); ok {
			if adm["inflight"].(float64) >= 1 && adm["queue_depth"].(float64) >= 1 {
				break
			}
		}
		time.Sleep(time.Millisecond)
	}

	body, _ := json.Marshal(CompleteRequest{Prompt: prompt, GenConfig: promptcache.GenConfig{MaxTokens: 4}})
	req := httptest.NewRequest(http.MethodPost, "/v1/stream", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("stream under overload = %d, want 429 (body %q)", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("shed stream reply lacks Retry-After")
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("shed stream reply Content-Type = %q, want a JSON error, not SSE", ct)
	}
	wg.Wait()
	checkGoroutines(t, baseline)
}

// TestDeadlineExpiryMaps504: a configured per-request deadline that
// expires surfaces as ErrDeadline and maps to 504, distinguishable from
// a client disconnect (499).
func TestDeadlineExpiryMaps504(t *testing.T) {
	s := newAdmitServer(t, 4, 4, time.Nanosecond)
	prompt := `<prompt schema="docs"><contract/>Summarize the duties please.</prompt>`
	rec, out := doJSON(t, s, http.MethodPost, "/v1/complete", CompleteRequest{Prompt: prompt, GenConfig: promptcache.GenConfig{MaxTokens: 4}})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline = %d %v, want 504", rec.Code, out)
	}
}

// TestStatusForOverloadTaxonomy pins the transport mapping for the two
// new sentinels, including wrapped chains.
func TestStatusForOverloadTaxonomy(t *testing.T) {
	overload := fmt.Errorf("serving: %w", &promptcache.OverloadError{RetryAfter: 3 * time.Second, QueueDepth: 7})
	if got := statusFor(overload); got != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d, want 429", got)
	}
	if !errors.Is(overload, promptcache.ErrOverloaded) {
		t.Fatal("wrapped OverloadError must satisfy errors.Is(ErrOverloaded)")
	}
	if d, ok := promptcache.RetryAfterHint(overload); !ok || d != 3*time.Second {
		t.Fatalf("RetryAfterHint = %v %v, want 3s true", d, ok)
	}
	if _, ok := promptcache.RetryAfterHint(errors.New("plain")); ok {
		t.Fatal("RetryAfterHint on a plain error must report false")
	}

	deadline := fmt.Errorf("turn failed: %w", fmt.Errorf("%w: context deadline exceeded", promptcache.ErrDeadline))
	if got := statusFor(deadline); got != http.StatusGatewayTimeout {
		t.Fatalf("deadline status = %d, want 504", got)
	}

	// writeErr surfaces the hint as a ceil'd, never-zero header.
	rec := httptest.NewRecorder()
	writeErr(rec, http.StatusTooManyRequests, &promptcache.OverloadError{RetryAfter: 1200 * time.Millisecond})
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want ceil(1.2s) = 2", got)
	}
	rec = httptest.NewRecorder()
	writeErr(rec, http.StatusTooManyRequests, &promptcache.OverloadError{RetryAfter: time.Millisecond})
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want floor of 1 second", got)
	}
	rec = httptest.NewRecorder()
	writeErr(rec, http.StatusInternalServerError, errors.New("boom"))
	if got := rec.Header().Get("Retry-After"); got != "" {
		t.Fatalf("non-overload error grew a Retry-After: %q", got)
	}
}

// TestCompleteSLOField: the wire slo field routes to the engine's
// classes; an unknown class is a 422, not a silent default.
func TestCompleteSLOField(t *testing.T) {
	s := newAdmitServer(t, 2, 2, 0)
	prompt := `<prompt schema="docs"><contract/>Summarize the duties please.</prompt>`
	for _, slo := range []string{"", "interactive", "batch"} {
		rec, out := doJSON(t, s, http.MethodPost, "/v1/complete", map[string]any{"prompt": prompt, "max_tokens": 4, "slo": slo})
		if rec.Code != http.StatusOK {
			t.Fatalf("slo %q = %d %v", slo, rec.Code, out)
		}
	}
	rec, out := doJSON(t, s, http.MethodPost, "/v1/complete", map[string]any{"prompt": prompt, "max_tokens": 4, "slo": "bulk"})
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("slo bulk = %d %v, want 422", rec.Code, out)
	}

	_, out = doJSON(t, s, http.MethodGet, "/v1/stats", nil)
	adm := out["admission"].(map[string]any)
	batch := adm["batch"].(map[string]any)
	if batch["admitted"].(float64) != 1 {
		t.Fatalf("batch-class request not accounted to the batch lane: %v", adm)
	}
}
