package server

import (
	"fmt"
	"net/http"
	"sort"
	"testing"

	"repro/internal/model"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

// The /v1/stats JSON document is a monitoring contract: dashboards and
// alerts key on its field names and types, so a rename or a type change
// is a breaking change even when every Go test still passes. The golden
// maps below pin the full document — top level, tiers, scheduler and
// mining blocks. Adding a field requires touching the golden (visible in
// review); removing or renaming one fails the test.

// kindOf names a decoded JSON value's type the way the contract sees it.
func kindOf(v any) string {
	switch v.(type) {
	case float64:
		return "number"
	case string:
		return "string"
	case bool:
		return "bool"
	case []any:
		return "array"
	case map[string]any:
		return "object"
	case nil:
		return "null"
	default:
		return fmt.Sprintf("%T", v)
	}
}

func checkBlock(t *testing.T, label string, got map[string]any, want map[string]string) {
	t.Helper()
	var keys []string
	for k := range got {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		wantKind, ok := want[k]
		if !ok {
			t.Errorf("%s: field %q is not in the stats contract — extend the golden if it is intentional", label, k)
			continue
		}
		if kind := kindOf(got[k]); kind != wantKind {
			t.Errorf("%s: field %q is %s, contract says %s", label, k, kind, wantKind)
		}
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			t.Errorf("%s: contract field %q missing from response", label, k)
		}
	}
}

var statsTopContract = map[string]string{
	"api_version":      "number",
	"modules_encoded":  "number",
	"modules_reused":   "number",
	"modules_evicted":  "number",
	"modules_reloaded": "number",
	"tokens_encoded":   "number",
	"tokens_reused":    "number",
	"pool_bytes":       "number",
	"open_sessions":    "number",
	"tiers":            "object",
	"backend":          "object",
	"scheduler":        "object",
	"mining":           "object",
	"admission":        "object",
	"speculation":      "object",
}

var statsBackendContract = map[string]string{
	"name":      "string",
	"workers":   "number",
	"cpu_arch":  "string",
	"cpu_cores": "number",
	"max_procs": "number",
	"vector":    "string",
}

var statsTiersContract = map[string]string{
	"device_bytes":        "number",
	"host_bytes":          "number",
	"disk_bytes":          "number",
	"disk_modules":        "number",
	"modules_demoted":     "number",
	"modules_promoted":    "number",
	"modules_spilled":     "number",
	"disk_hits":           "number",
	"disk_load_errors":    "number",
	"disk_retries":        "number",
	"tier_account_errors": "number",
}

var statsSchedulerContract = map[string]string{
	"max_batch":       "number",
	"queue_depth":     "number",
	"active_lanes":    "number",
	"lanes_joined":    "number",
	"lanes_retired":   "number",
	"lanes_cancelled": "number",
	"fused_steps":     "number",
	"tokens_decoded":  "number",
	"batch_hist":      "array",
	"tokens_per_sec":  "number",
}

var statsAdmissionContract = map[string]string{
	"max_concurrent": "number",
	"max_queue":      "number",
	"inflight":       "number",
	"queue_depth":    "number",
	"retry_after_ms": "number",
	"interactive":    "object",
	"batch":          "object",
}

var statsAdmissionClassContract = map[string]string{
	"admitted":    "number",
	"shed":        "number",
	"canceled":    "number",
	"completed":   "number",
	"queue_depth": "number",
}

var statsSpeculationContract = map[string]string{
	"enabled":        "bool",
	"observed":       "number",
	"classes":        "number",
	"contexts":       "number",
	"spec_steps":     "number",
	"draft_proposed": "number",
	"draft_accepted": "number",
	"accept_rate":    "number",
}

var statsMiningContract = map[string]string{
	"observed":         "number",
	"classes":          "number",
	"nodes":            "number",
	"candidates":       "number",
	"live_modules":     "number",
	"promotions":       "number",
	"demotions":        "number",
	"hits":             "number",
	"hit_tokens_saved": "number",
	"snapshot_skipped": "number",
}

func TestStatsContractGolden(t *testing.T) {
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+2048, 11))
	if err != nil {
		t.Fatal(err)
	}
	// Every optional block enabled at once, so the contract covers the
	// full document.
	client := promptcache.New(m,
		promptcache.WithDecodeScheduler(4),
		promptcache.WithDiskTier(t.TempDir(), promptcache.CodecFP32),
		promptcache.WithModuleMining(promptcache.MiningOpts{MinHits: 2, MinTokens: 4}),
		promptcache.WithAdmission(promptcache.AdmissionConfig{}),
		promptcache.WithSpeculation(promptcache.DraftOpts{}),
	)
	s := New(client)
	doJSON(t, s, http.MethodPost, "/schemas", SchemaRequest{PML: testSchema})
	prompt := `<prompt schema="docs"><contract/>Summarize the duties and list every obligation in order.</prompt>`
	for i := 0; i < 3; i++ {
		rec, out := doJSON(t, s, http.MethodPost, "/v1/complete", CompleteRequest{Prompt: prompt, GenConfig: promptcache.GenConfig{MaxTokens: 4}})
		if rec.Code != http.StatusOK {
			t.Fatalf("complete %d: %d %v", i, rec.Code, out)
		}
	}

	rec, out := doJSON(t, s, http.MethodGet, "/v1/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	checkBlock(t, "stats", out, statsTopContract)
	if tiers, ok := out["tiers"].(map[string]any); ok {
		checkBlock(t, "tiers", tiers, statsTiersContract)
	}
	// The backend block is unconditional: every deployment runs on some
	// backend, so operators can always attribute latency to it.
	bk, ok := out["backend"].(map[string]any)
	if !ok {
		t.Fatalf("no backend block in /v1/stats: %v", out)
	}
	checkBlock(t, "backend", bk, statsBackendContract)
	if sched, ok := out["scheduler"].(map[string]any); ok {
		checkBlock(t, "scheduler", sched, statsSchedulerContract)
	}
	if mining, ok := out["mining"].(map[string]any); ok {
		checkBlock(t, "mining", mining, statsMiningContract)
	}
	spec, ok := out["speculation"].(map[string]any)
	if !ok {
		t.Fatalf("no speculation block in /v1/stats with WithSpeculation: %v", out)
	}
	checkBlock(t, "speculation", spec, statsSpeculationContract)
	if adm, ok := out["admission"].(map[string]any); ok {
		checkBlock(t, "admission", adm, statsAdmissionContract)
		for _, class := range []string{"interactive", "batch"} {
			if cls, ok := adm[class].(map[string]any); ok {
				checkBlock(t, "admission."+class, cls, statsAdmissionClassContract)
			}
		}
	}
}

// TestStatsMiningBlock is the transport-level mining acceptance: a
// server started with mining enabled promotes a repeated undeclared
// suffix and reports the hit through /v1/stats — what an operator
// watching pcserve -mine sees. Without mining the block is absent.
func TestStatsMiningBlock(t *testing.T) {
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+2048, 11))
	if err != nil {
		t.Fatal(err)
	}
	client := promptcache.New(m,
		promptcache.WithModuleMining(promptcache.MiningOpts{MinHits: 2, MinTokens: 4}),
	)
	s := New(client)
	doJSON(t, s, http.MethodPost, "/schemas", SchemaRequest{PML: testSchema})
	prompt := `<prompt schema="docs"><contract/>Summarize the duties and list every obligation in order.</prompt>`
	for i := 0; i < 4; i++ {
		rec, out := doJSON(t, s, http.MethodPost, "/v1/complete", CompleteRequest{Prompt: prompt, GenConfig: promptcache.GenConfig{MaxTokens: 4}})
		if rec.Code != http.StatusOK {
			t.Fatalf("complete %d: %d %v", i, rec.Code, out)
		}
	}
	_, out := doJSON(t, s, http.MethodGet, "/v1/stats", nil)
	mining, ok := out["mining"].(map[string]any)
	if !ok {
		t.Fatalf("no mining block in /v1/stats: %v", out)
	}
	if mining["promotions"].(float64) < 1 {
		t.Fatalf("repeated suffix never promoted: %v", mining)
	}
	if mining["hits"].(float64) < 1 || mining["hit_tokens_saved"].(float64) <= 0 {
		t.Fatalf("promoted prefix never hit: %v", mining)
	}

	// Plain server: no mining block.
	plain := newServer(t)
	doJSON(t, plain, http.MethodPost, "/schemas", SchemaRequest{PML: testSchema})
	_, out = doJSON(t, plain, http.MethodGet, "/v1/stats", nil)
	if _, has := out["mining"]; has {
		t.Fatalf("mining block present without mining: %v", out)
	}
}
