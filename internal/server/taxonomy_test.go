package server

import (
	"fmt"
	"net/http"
	"testing"

	"repro/promptcache"
)

// TestStatusForBadSnapshot: a failed warm restart surfaced through the
// API must read as a client-data problem (the snapshot bytes), not a
// server fault.
func TestStatusForBadSnapshot(t *testing.T) {
	err := fmt.Errorf("restoring schema: %w", promptcache.ErrBadSnapshot)
	if got := statusFor(err); got != http.StatusUnprocessableEntity {
		t.Fatalf("statusFor(ErrBadSnapshot) = %d, want %d", got, http.StatusUnprocessableEntity)
	}
}
