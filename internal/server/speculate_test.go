package server

import (
	"net/http"
	"testing"

	"repro/internal/model"
	"repro/internal/tokenizer"
	"repro/promptcache"
)

// TestSpeculationOverWire: the speculation block of the wire surface
// end to end — a -speculate-style server trains its draft source on
// served traffic, reports acceptance through /v1/stats, and honors the
// per-request {"speculation": {"enabled": false}} opt-out, all with
// byte-identical reply text.
func TestSpeculationOverWire(t *testing.T) {
	m, err := model.New(model.LlamaStyle(tokenizer.WordBase+2048, 11))
	if err != nil {
		t.Fatal(err)
	}
	client := promptcache.New(m,
		promptcache.WithDecodeScheduler(4),
		promptcache.WithSpeculation(promptcache.DraftOpts{MinHits: 1}),
	)
	s := New(client)
	doJSON(t, s, http.MethodPost, "/schemas", SchemaRequest{PML: testSchema})
	body := map[string]any{
		"prompt":     `<prompt schema="docs"><contract/>Summarize the duties.</prompt>`,
		"max_tokens": 12,
	}
	complete := func(b map[string]any) string {
		t.Helper()
		rec, out := doJSON(t, s, http.MethodPost, "/v1/complete", b)
		if rec.Code != http.StatusOK {
			t.Fatalf("complete: %d %v", rec.Code, out)
		}
		return out["text"].(string)
	}
	want := complete(body) // trains the draft
	warm := complete(body) // speculates
	if warm != want {
		t.Fatalf("speculative reply diverges: %q vs %q", warm, want)
	}

	specBlock := func() map[string]any {
		t.Helper()
		rec, out := doJSON(t, s, http.MethodGet, "/v1/stats", nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("stats: %d", rec.Code)
		}
		blk, ok := out["speculation"].(map[string]any)
		if !ok {
			t.Fatalf("no speculation block: %v", out)
		}
		return blk
	}
	blk := specBlock()
	if blk["enabled"] != true || blk["spec_steps"].(float64) == 0 || blk["draft_accepted"].(float64) == 0 {
		t.Fatalf("warm request never speculated: %v", blk)
	}

	// Per-request opt-out through the embedded GenConfig wire key.
	before := blk["spec_steps"].(float64)
	optOut := map[string]any{
		"prompt":      body["prompt"],
		"max_tokens":  12,
		"speculation": map[string]any{"enabled": false},
	}
	if got := complete(optOut); got != want {
		t.Fatalf("opted-out reply diverges: %q vs %q", got, want)
	}
	if after := specBlock()["spec_steps"].(float64); after != before {
		t.Fatalf("opted-out request still speculated: %v -> %v spec steps", before, after)
	}
}
