package model

import (
	"testing"

	"repro/internal/kvcache"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
)

// TestDecodeStepBatchBitIdentical: a fused batch of heterogeneous
// sequences must produce, for every lane, exactly the logits and KV rows
// the solo decode path produces — across every architecture family
// (RoPE, ALiBi with position gaps, learned positions, parallel attn).
func TestDecodeStepBatchBitIdentical(t *testing.T) {
	for _, cfg := range allConfigs(41) {
		t.Run(cfg.Name, func(t *testing.T) {
			m := MustNew(cfg)
			r := rng.New(99)
			const lanesN = 4
			const steps = 6

			// Heterogeneous prefixes: different lengths, and for lane i>0 a
			// position gap of 32*i between prefix and decode, exercising the
			// ALiBi "white space" and RoPE table lookups off the dense path.
			prefixes := make([][]int, lanesN)
			positions := make([][]int, lanesN)
			for i := range prefixes {
				n := 3 + 2*i
				prefixes[i] = randTokens(r, n)
				positions[i] = seqPositions(n, 0)
			}

			// Solo reference: per lane, prefill then decode via the public
			// solo step (Decode allocates per call but shares step()).
			soloLogits := make([][][]float32, lanesN)
			soloKV := make([]*kvcache.Cache, lanesN)
			feeds := make([][]int, lanesN)
			for i := range prefixes {
				kv := m.NewCache(len(prefixes[i]) + steps)
				if _, err := m.Prefill(prefixes[i], positions[i], kv); err != nil {
					t.Fatal(err)
				}
				soloKV[i] = kv
				pos := kv.MaxPos() + 32*i // lane-specific gap
				feeds[i] = randTokens(rng.New(uint64(1000+i)), steps)
				for s := 0; s < steps; s++ {
					lg, err := m.Decode(feeds[i][s], pos+s, kv)
					if err != nil {
						t.Fatal(err)
					}
					soloLogits[i] = append(soloLogits[i], lg)
				}
			}

			// Fused: same prefixes, all lanes stepped together.
			lanes := make([]*DecodeLane, lanesN)
			kvs := make([]kvcache.KV, lanesN)
			basePos := make([]int, lanesN)
			for i := range prefixes {
				kv := m.NewCache(len(prefixes[i]) + steps)
				if _, err := m.Prefill(prefixes[i], positions[i], kv); err != nil {
					t.Fatal(err)
				}
				kvs[i] = kv
				basePos[i] = kv.MaxPos() + 32*i
				lanes[i] = m.NewDecodeLane()
				defer lanes[i].Close()
			}
			toks := make([]int, lanesN)
			poss := make([]int, lanesN)
			for s := 0; s < steps; s++ {
				for i := range lanes {
					toks[i] = feeds[i][s]
					poss[i] = basePos[i] + s
				}
				if err := m.DecodeStepBatch(lanes, toks, poss, kvs); err != nil {
					t.Fatal(err)
				}
				for i, ln := range lanes {
					if err := ln.Err(); err != nil {
						t.Fatalf("lane %d step %d: %v", i, s, err)
					}
					if d := tensor.MaxAbsDiff(ln.Logits(), soloLogits[i][s]); d != 0 {
						t.Fatalf("lane %d step %d: fused logits diverge from solo by %v", i, s, d)
					}
				}
			}
			for i := range kvs {
				fused := kvs[i].(*kvcache.Cache)
				if fused.Len() != soloKV[i].Len() {
					t.Fatalf("lane %d: fused KV %d rows, solo %d", i, fused.Len(), soloKV[i].Len())
				}
				for l := 0; l < cfg.NLayers; l++ {
					if tensor.MaxAbsDiff(fused.K[l], soloKV[i].K[l]) != 0 || tensor.MaxAbsDiff(fused.V[l], soloKV[i].V[l]) != 0 {
						t.Fatalf("lane %d layer %d: fused KV rows diverge from solo", i, l)
					}
				}
			}
		})
	}
}

// TestDecodeStepBatchLaneError: an invalid lane reports through Err()
// and appends nothing, while the rest of the batch steps normally.
func TestDecodeStepBatchLaneError(t *testing.T) {
	m := MustNew(LlamaStyle(testVocab, 5))
	prefix := randTokens(rng.New(3), 4)
	mk := func() *kvcache.Cache {
		kv := m.NewCache(8)
		if _, err := m.Prefill(prefix, seqPositions(4, 0), kv); err != nil {
			t.Fatal(err)
		}
		return kv
	}
	good, bad := mk(), mk()
	soloRef := mk()
	wantLogits, err := m.Decode(tokenizer.WordBase, 4, soloRef)
	if err != nil {
		t.Fatal(err)
	}

	lanes := []*DecodeLane{m.NewDecodeLane(), m.NewDecodeLane()}
	defer lanes[0].Close()
	defer lanes[1].Close()
	err = m.DecodeStepBatch(lanes,
		[]int{tokenizer.WordBase, m.Cfg.VocabSize + 5}, // lane 1: token out of vocab
		[]int{4, 4},
		[]kvcache.KV{good, bad})
	if err != nil {
		t.Fatal(err)
	}
	if lanes[0].Err() != nil {
		t.Fatalf("healthy lane failed: %v", lanes[0].Err())
	}
	if lanes[1].Err() == nil {
		t.Fatal("invalid lane reported no error")
	}
	if bad.Len() != 4 {
		t.Fatalf("failed lane appended rows: len=%d", bad.Len())
	}
	if good.Len() != 5 {
		t.Fatalf("healthy lane has %d rows, want 5", good.Len())
	}
	if d := tensor.MaxAbsDiff(lanes[0].Logits(), wantLogits); d != 0 {
		t.Fatalf("healthy lane diverged from solo by %v", d)
	}

	// Mismatched slice lengths are a caller bug, reported on the call.
	if err := m.DecodeStepBatch(lanes, []int{1}, []int{4, 4}, []kvcache.KV{good, bad}); err == nil {
		t.Fatal("expected shape error")
	}
}
