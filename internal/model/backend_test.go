package model

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// TestBackendsBitIdenticalForward is the model-level half of the backend
// contract: a full forward pass — chunked prefill (24 tokens, above
// chunkThreshold), per-token decode through Complete, and the final
// logits — must be bit-for-bit identical under every backend, for every
// architecture family. tensor's own tests prove the kernels agree
// element by element; this proves the model wires them so that nothing
// (scratch reuse, span conversion, lane batching) depends on the
// backend either.
func TestBackendsBitIdenticalForward(t *testing.T) {
	for _, cfg := range allConfigs(7788) {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			toks := randTokens(rng.New(55), 24)
			run := func(bk tensor.Backend) ([]int, []float32) {
				m := MustNew(cfg)
				m.SetBackend(bk)
				cache := m.NewCache(len(toks))
				logits, err := m.Prefill(toks, seqPositions(len(toks), 0), cache)
				if err != nil {
					t.Fatal(err)
				}
				out, _, err := m.Complete(toks, GenerateOpts{MaxTokens: 6})
				if err != nil {
					t.Fatal(err)
				}
				return out, logits
			}
			wantOut, wantLg := run(tensor.Scalar())
			for _, bk := range []tensor.Backend{tensor.NewParallel(4), tensor.NewParallel(3)} {
				gotOut, gotLg := run(bk)
				if fmt.Sprint(gotOut) != fmt.Sprint(wantOut) {
					t.Fatalf("workers=%d: greedy continuation diverged: %v vs %v", bk.Workers(), gotOut, wantOut)
				}
				for i := range wantLg {
					if math.Float32bits(wantLg[i]) != math.Float32bits(gotLg[i]) {
						t.Fatalf("workers=%d: prefill logit %d differs in bits: %v vs %v",
							bk.Workers(), i, wantLg[i], gotLg[i])
					}
				}
			}
		})
	}
}
