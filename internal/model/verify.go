package model

import (
	"fmt"
	"sync"

	"repro/internal/kvcache"
	"repro/internal/tensor"
)

// DecodeStepBatchMulti is the speculative-decoding verify step: one fused
// pass that scores several consecutive draft tokens per lane. Lane i
// appends tokens[i][j] at positions[i][j] to kvs[i] for every j and
// computes next-token logits at each of the k positions (read them with
// lanes[i].LogitsAt(j)). A lane with a single token behaves exactly like
// DecodeStepBatch; the layer loop still runs once for the whole batch.
//
// Bit-identity with sequential solo decode is structural, by the same
// argument that makes prefill and decode agree: the walk is layer-outer,
// lane-inner, position-inner, and every per-position operation — norm,
// QKV projections, RoPE at that position, AppendToken, attention over
// that position's causal row count, projection, FFN — has exactly the
// inputs and reduction order the solo step() sequence would give it.
// Position j's attention at layer l sees rows 0..base+j, whose layer-l
// K/V values were appended earlier in the same layer pass and equal the
// sequential values. So if the scored tokens match what solo decode
// would have sampled, the logits at every position match bit-for-bit —
// the invariant the speculation acceptance loop in internal/core relies
// on, and what lets rejected drafts fall back to the verified token
// without recomputing anything.
//
// Validation is all-or-nothing per lane: a lane with any out-of-range
// token or position appends nothing to its cache and is excluded from
// the walk, reported via Err(). The returned error is reserved for
// malformed calls (mismatched slice shapes, empty lanes).
func (m *Model) DecodeStepBatchMulti(lanes []*DecodeLane, tokens, positions [][]int, kvs []kvcache.KV) error {
	if len(lanes) != len(tokens) || len(lanes) != len(positions) || len(lanes) != len(kvs) {
		return fmt.Errorf("model: DecodeStepBatchMulti lanes=%d tokens=%d positions=%d kvs=%d",
			len(lanes), len(tokens), len(positions), len(kvs))
	}
	cfg := &m.Cfg

	for i, ln := range lanes {
		ln.err = nil
		ln.skip = false
		ln.mk = 0
		toks, poss := tokens[i], positions[i]
		if len(toks) == 0 || len(toks) != len(poss) {
			return fmt.Errorf("model: DecodeStepBatchMulti lane %d has %d tokens but %d positions",
				i, len(toks), len(poss))
		}
		// Validate the whole lane before touching its cache, preserving
		// the single-token step's contract that a failed lane appended
		// nothing.
		for j := range toks {
			if tok := toks[j]; tok < 0 || tok >= cfg.VocabSize {
				ln.err = fmt.Errorf("model: token %d out of vocab %d", tok, cfg.VocabSize)
				ln.skip = true
				break
			}
			if pos := poss[j]; pos < 0 || pos >= cfg.MaxSeq {
				ln.err = fmt.Errorf("model: position %d out of range [0,%d)", pos, cfg.MaxSeq)
				ln.skip = true
				break
			}
		}
		if ln.skip {
			continue
		}
		ln.growMulti(len(toks))
		for j := range toks {
			sc := ln.scratchAt(j)
			copy(sc.x, m.embedding.Row(toks[j]))
			if cfg.PosEnc == Learned {
				tensor.Add(sc.x, m.posTable.Row(poss[j]))
			}
			kvs[i].AppendPos(poss[j])
			ln.mpos[j] = poss[j]
			ln.mrows[j] = kvs[i].Len()
		}
	}

	// Fan whole lanes out across workers exactly as DecodeStepBatch does:
	// lanes share nothing but read-only weights, so the split cannot
	// change any lane's numbers.
	active := 0
	for _, ln := range lanes {
		if !ln.skip {
			active++
		}
	}
	if workers := m.bk.Workers(); workers > 1 && active >= 2 {
		if workers > len(lanes) {
			workers = len(lanes)
		}
		chunk := (len(lanes) + workers - 1) / workers
		var wg sync.WaitGroup
		for lo := 0; lo < len(lanes); lo += chunk {
			hi := lo + chunk
			if hi > len(lanes) {
				hi = len(lanes)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				m.stepLanesMulti(lanes[lo:hi], kvs[lo:hi])
			}(lo, hi)
		}
		wg.Wait()
	} else {
		m.stepLanesMulti(lanes, kvs)
	}

	// Output head, batched over every (lane, position) pair: the verify
	// step's bandwidth win — each vocab row is walked once while k·N
	// logit vectors are produced.
	var dsts, hs [][]float32
	for _, ln := range lanes {
		if ln.skip {
			continue
		}
		for j := 0; j < ln.mk; j++ {
			sc := ln.scratchAt(j)
			if sc.lgOut == nil {
				sc.lgH = make([]float32, cfg.Dim)
				sc.lgOut = make([]float32, cfg.VocabSize)
			}
			m.norm(sc.lgH, sc.x, m.finalNormW, m.finalNormB)
			dsts = append(dsts, sc.lgOut)
			hs = append(hs, sc.lgH)
		}
	}
	m.bk.OutputHead(dsts, m.embedding, hs)
	return nil
}

// stepLanesMulti runs the fused layer walk for a lane range of a
// multi-position step: layer-outer, lane-inner, position-inner. Within a
// lane, position j's operation sequence at each layer is identical to
// step()'s, and its attention row count ln.mrows[j] covers exactly the
// rows a sequential decode would have cached before it.
func (m *Model) stepLanesMulti(lanes []*DecodeLane, kvs []kvcache.KV) {
	cfg := &m.Cfg
	for l := range m.layers {
		ly := &m.layers[l]
		for i, ln := range lanes {
			if ln.skip {
				continue
			}
			for j := 0; j < ln.mk; j++ {
				sc := ln.scratchAt(j)
				pos := ln.mpos[j]
				m.norm(sc.h, sc.x, ly.attnNormW, ly.attnNormB)

				m.bk.MatVecT(sc.q, ly.wq, sc.h)
				m.bk.MatVecT(sc.k, ly.wk, sc.h)
				m.bk.MatVecT(sc.v, ly.wv, sc.h)
				if cfg.PosEnc == RoPE {
					m.applyRope(sc.q, cfg.NHeads, pos)
					m.applyRope(sc.k, cfg.NKVHeads, pos)
				}
				kvs[i].AppendToken(l, sc.k, sc.v)

				m.attend(sc, kvs[i], l, ln.mrows[j], pos)

				m.bk.MatVecT(sc.proj, ly.wo, sc.attnOut)
				if cfg.ParallelAttn {
					tensor.Add(sc.x, sc.proj)
					m.ffn(sc, ly, sc.h)
				} else {
					tensor.Add(sc.x, sc.proj)
					m.norm(sc.h, sc.x, ly.ffnNormW, ly.ffnNormB)
					m.ffn(sc, ly, sc.h)
				}
			}
		}
	}
}
