package model

import (
	"context"
	"fmt"
	"math"

	"repro/internal/kvcache"
	"repro/internal/tensor"
)

// chunkThreshold is the prefill length at which the batched path takes
// over from the per-token path. Batching turns the weight applications
// into (n × dim)·(dim × out) matrix multiplications that internal/tensor
// parallelizes across cores — the same reason real engines prefill in
// chunks rather than token by token.
const chunkThreshold = 16

// prefillChunk runs the forward pass over a whole chunk with batched
// matmuls. It is numerically equivalent to the sequential path: both use
// the same ascending-k accumulation order per output element, and
// attention is evaluated per token with an identical causal row bound.
// ctx is checked before each layer, the unit of work worth interrupting.
func (m *Model) prefillChunk(ctx context.Context, tokens, positions []int, kv kvcache.KV) ([]float32, error) {
	cfg := &m.Cfg
	n := len(tokens)
	past := kv.Len()

	// Embed.
	x := tensor.NewMatrix(n, cfg.Dim)
	for i, tok := range tokens {
		if tok < 0 || tok >= cfg.VocabSize {
			return nil, fmt.Errorf("model: token %d out of vocab %d", tok, cfg.VocabSize)
		}
		pos := positions[i]
		if pos < 0 || pos >= cfg.MaxSeq {
			return nil, fmt.Errorf("model: position %d out of range [0,%d)", pos, cfg.MaxSeq)
		}
		copy(x.Row(i), m.embedding.Row(tok))
		if cfg.PosEnc == Learned {
			tensor.Add(x.Row(i), m.posTable.Row(pos))
		}
	}
	for _, pos := range positions {
		kv.AppendPos(pos)
	}

	h := tensor.NewMatrix(n, cfg.Dim)
	q := tensor.NewMatrix(n, cfg.Dim)
	k := tensor.NewMatrix(n, cfg.KVDim())
	v := tensor.NewMatrix(n, cfg.KVDim())
	attnOut := tensor.NewMatrix(n, cfg.Dim)
	proj := tensor.NewMatrix(n, cfg.Dim)
	ffn1 := tensor.NewMatrix(n, cfg.FFNDim)
	ffn3 := tensor.NewMatrix(n, cfg.FFNDim)
	scores := make([]float32, past+n)
	var segs []kvcache.Segment

	for l := range m.layers {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ly := &m.layers[l]
		for i := 0; i < n; i++ {
			m.norm(h.Row(i), x.Row(i), ly.attnNormW, ly.attnNormB)
		}
		tensor.MatMul(q, h, ly.wq)
		tensor.MatMul(k, h, ly.wk)
		tensor.MatMul(v, h, ly.wv)
		if cfg.PosEnc == RoPE {
			for i := 0; i < n; i++ {
				m.applyRope(q.Row(i), cfg.NHeads, positions[i])
				m.applyRope(k.Row(i), cfg.NKVHeads, positions[i])
			}
		}
		for i := 0; i < n; i++ {
			kv.AppendToken(l, k.Row(i), v.Row(i))
		}
		segs = m.attendChunk(q, attnOut, kv, l, past, n, positions, scores, segs)
		tensor.MatMul(proj, attnOut, ly.wo)
		tensor.Add(x.Data, proj.Data)
		if cfg.ParallelAttn {
			// Falcon block: FFN from the same normed input.
			m.ffnChunk(x, h, ffn1, ffn3, proj, ly)
		} else {
			for i := 0; i < n; i++ {
				m.norm(h.Row(i), x.Row(i), ly.ffnNormW, ly.ffnNormB)
			}
			m.ffnChunk(x, h, ffn1, ffn3, proj, ly)
		}
	}
	return m.logits(x.Row(n - 1)), nil
}

// ffnChunk applies the feed-forward block to every row of h and adds the
// result into x.
func (m *Model) ffnChunk(x, h, ffn1, ffn3, proj *tensor.Matrix, ly *layer) {
	tensor.MatMul(ffn1, h, ly.w1)
	switch m.Cfg.Act {
	case SwiGLU:
		tensor.SiLU(ffn1.Data)
		tensor.MatMul(ffn3, h, ly.w3)
		tensor.Mul(ffn1.Data, ffn3.Data)
	case GELU:
		tensor.GELU(ffn1.Data)
	}
	tensor.MatMul(proj, ffn1, ly.w2)
	tensor.Add(x.Data, proj.Data)
}

// attendChunk computes causal attention for every chunk token: token i
// (cache row past+i, position positions[i]) attends over rows
// [0, past+i+1). It walks the view's contiguous segments once per layer
// — cached module rows are read in place, never copied — clamping each
// token's scan at its causal bound. The segs buffer is reused across
// layers; the (possibly grown) slice is returned for the next call.
func (m *Model) attendChunk(q, out *tensor.Matrix, kv kvcache.KV, l, past, n int, positions []int, scores []float32, segs []kvcache.Segment) []kvcache.Segment {
	cfg := &m.Cfg
	hd := cfg.HeadDim()
	width := cfg.KVDim()
	group := cfg.NHeads / cfg.NKVHeads
	invSqrt := float32(1 / math.Sqrt(float64(hd)))
	segs = kv.AppendSegments(segs[:0], l, past+n)
	for i := 0; i < n; i++ {
		rows := past + i + 1
		qPos := positions[i]
		outRow := out.Row(i)
		for hIdx := 0; hIdx < cfg.NHeads; hIdx++ {
			kvh := hIdx / group
			base := kvh * hd
			qh := q.Row(i)[hIdx*hd : (hIdx+1)*hd]
			s := scores[:rows]
			off := 0
			for _, seg := range segs {
				if off >= rows {
					break
				}
				lim := len(seg.Pos)
				if off+lim > rows {
					lim = rows - off
				}
				for j := 0; j < lim; j++ {
					row := j * width
					sc := tensor.Dot(qh, seg.K[row+base:row+base+hd]) * invSqrt
					if cfg.PosEnc == ALiBi {
						dist := qPos - seg.Pos[j]
						if dist < 0 {
							dist = 0
						}
						sc -= m.alibiSlope[hIdx] * float32(dist)
					}
					s[off+j] = sc
				}
				off += lim
			}
			tensor.Softmax(s)
			oh := outRow[hIdx*hd : (hIdx+1)*hd]
			for t := range oh {
				oh[t] = 0
			}
			off = 0
			for _, seg := range segs {
				if off >= rows {
					break
				}
				lim := len(seg.Pos)
				if off+lim > rows {
					lim = rows - off
				}
				for j := 0; j < lim; j++ {
					w := s[off+j]
					if w == 0 {
						continue
					}
					row := j * width
					vh := seg.V[row+base : row+base+hd]
					for t := range oh {
						oh[t] += w * vh[t]
					}
				}
				off += lim
			}
		}
	}
	return segs
}
