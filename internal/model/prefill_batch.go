package model

import (
	"context"
	"fmt"
	"math"

	"repro/internal/kvcache"
	"repro/internal/tensor"
)

// chunkThreshold is the prefill length at which the batched path takes
// over from the per-token path. Batching turns the weight applications
// into (n × dim)·(dim × out) matrix multiplications that a multi-worker
// backend shards across cores — the same reason real engines prefill in
// chunks rather than token by token.
const chunkThreshold = 16

// prefillChunk runs the forward pass over a whole chunk with batched
// matmuls. It is numerically equivalent to the sequential path: both use
// the same ascending-k accumulation order per output element, and
// attention is evaluated per token with an identical causal row bound.
// ctx is checked before each layer, the unit of work worth interrupting.
func (m *Model) prefillChunk(ctx context.Context, tokens, positions []int, kv kvcache.KV) ([]float32, error) {
	cfg := &m.Cfg
	n := len(tokens)
	past := kv.Len()

	// Embed.
	x := tensor.NewMatrix(n, cfg.Dim)
	for i, tok := range tokens {
		if tok < 0 || tok >= cfg.VocabSize {
			return nil, fmt.Errorf("model: token %d out of vocab %d", tok, cfg.VocabSize)
		}
		pos := positions[i]
		if pos < 0 || pos >= cfg.MaxSeq {
			return nil, fmt.Errorf("model: position %d out of range [0,%d)", pos, cfg.MaxSeq)
		}
		copy(x.Row(i), m.embedding.Row(tok))
		if cfg.PosEnc == Learned {
			tensor.Add(x.Row(i), m.posTable.Row(pos))
		}
	}
	for _, pos := range positions {
		kv.AppendPos(pos)
	}

	h := tensor.NewMatrix(n, cfg.Dim)
	q := tensor.NewMatrix(n, cfg.Dim)
	k := tensor.NewMatrix(n, cfg.KVDim())
	v := tensor.NewMatrix(n, cfg.KVDim())
	attnOut := tensor.NewMatrix(n, cfg.Dim)
	proj := tensor.NewMatrix(n, cfg.Dim)
	ffn1 := tensor.NewMatrix(n, cfg.FFNDim)
	ffn3 := tensor.NewMatrix(n, cfg.FFNDim)
	scores := make([]float32, past+n)
	var segs []kvcache.Segment
	var spans []tensor.Span
	att := tensor.AttendArgs{
		Q: q, Out: attnOut, Past: past, Positions: positions,
		NHeads: cfg.NHeads, Group: cfg.NHeads / cfg.NKVHeads,
		HeadDim: cfg.HeadDim(), Width: cfg.KVDim(),
		InvSqrt:     float32(1 / math.Sqrt(float64(cfg.HeadDim()))),
		AlibiSlopes: m.alibiSlope, Scores: scores,
	}

	for l := range m.layers {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ly := &m.layers[l]
		for i := 0; i < n; i++ {
			m.norm(h.Row(i), x.Row(i), ly.attnNormW, ly.attnNormB)
		}
		m.bk.MatMul(q, h, ly.wq)
		m.bk.MatMul(k, h, ly.wk)
		m.bk.MatMul(v, h, ly.wv)
		if cfg.PosEnc == RoPE {
			for i := 0; i < n; i++ {
				m.applyRope(q.Row(i), cfg.NHeads, positions[i])
				m.applyRope(k.Row(i), cfg.NKVHeads, positions[i])
			}
		}
		for i := 0; i < n; i++ {
			kv.AppendToken(l, k.Row(i), v.Row(i))
		}
		// Attend over the view's contiguous segments in place — cached
		// module rows are never copied. The segs/spans buffers are reused
		// across layers; token i's scan is causally clamped inside the
		// kernel to rows [0, past+i+1).
		segs = kv.AppendSegments(segs[:0], l, past+n)
		spans = spans[:0]
		for _, seg := range segs {
			spans = append(spans, tensor.Span{K: seg.K, V: seg.V, Pos: seg.Pos})
		}
		att.Spans = spans
		m.bk.AttendRowBlock(&att)
		m.bk.MatMul(proj, attnOut, ly.wo)
		tensor.Add(x.Data, proj.Data)
		if cfg.ParallelAttn {
			// Falcon block: FFN from the same normed input.
			m.ffnChunk(x, h, ffn1, ffn3, proj, ly)
		} else {
			for i := 0; i < n; i++ {
				m.norm(h.Row(i), x.Row(i), ly.ffnNormW, ly.ffnNormB)
			}
			m.ffnChunk(x, h, ffn1, ffn3, proj, ly)
		}
	}
	return m.logits(x.Row(n - 1)), nil
}

// ffnChunk applies the feed-forward block to every row of h and adds the
// result into x.
func (m *Model) ffnChunk(x, h, ffn1, ffn3, proj *tensor.Matrix, ly *layer) {
	m.bk.MatMul(ffn1, h, ly.w1)
	switch m.Cfg.Act {
	case SwiGLU:
		m.bk.SiLU(ffn1.Data)
		m.bk.MatMul(ffn3, h, ly.w3)
		tensor.Mul(ffn1.Data, ffn3.Data)
	case GELU:
		m.bk.GELU(ffn1.Data)
	}
	m.bk.MatMul(proj, ffn1, ly.w2)
	tensor.Add(x.Data, proj.Data)
}
