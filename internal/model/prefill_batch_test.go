package model

import (
	"context"
	"testing"

	"repro/internal/rng"
	"repro/internal/tensor"
)

// TestChunkedPrefillMatchesSequential: the batched path must agree with
// the per-token reference path on logits and on every cached K/V row,
// for all architectures, with past context and with position gaps.
func TestChunkedPrefillMatchesSequential(t *testing.T) {
	r := rng.New(401)
	for _, cfg := range allConfigs(501) {
		m := MustNew(cfg)
		past := randTokens(r, 5)
		chunk := randTokens(r, 24) // above chunkThreshold

		// Sequential reference: past then chunk, token by token.
		seq := m.NewCache(32)
		if _, err := m.prefillSequential(context.Background(), past, seqPositions(5, 0), seq); err != nil {
			t.Fatal(err)
		}
		wantLogits, err := m.prefillSequential(context.Background(), chunk, seqPositions(24, 10), seq) // gap at 5..9
		if err != nil {
			t.Fatal(err)
		}

		// Batched path over the same inputs.
		bat := m.NewCache(32)
		if _, err := m.prefillSequential(context.Background(), past, seqPositions(5, 0), bat); err != nil {
			t.Fatal(err)
		}
		gotLogits, err := m.prefillChunk(context.Background(), chunk, seqPositions(24, 10), bat)
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(wantLogits, gotLogits); d > 2e-4 {
			t.Fatalf("%s: chunked logits differ by %v", cfg.Name, d)
		}
		if seq.Len() != bat.Len() {
			t.Fatalf("%s: cache lengths differ", cfg.Name)
		}
		for l := 0; l < cfg.NLayers; l++ {
			if d := tensor.MaxAbsDiff(seq.K[l], bat.K[l]); d > 2e-4 {
				t.Fatalf("%s: layer %d keys differ by %v", cfg.Name, l, d)
			}
			if d := tensor.MaxAbsDiff(seq.V[l], bat.V[l]); d > 2e-4 {
				t.Fatalf("%s: layer %d values differ by %v", cfg.Name, l, d)
			}
		}
		for i := range seq.Pos {
			if seq.Pos[i] != bat.Pos[i] {
				t.Fatalf("%s: positions differ at %d", cfg.Name, i)
			}
		}
	}
}

// TestPrefillDispatch: Prefill takes the chunked path above the
// threshold and both paths reject bad inputs identically.
func TestPrefillDispatch(t *testing.T) {
	m := MustNew(LlamaStyle(testVocab, 601))
	r := rng.New(601)
	big := randTokens(r, chunkThreshold)
	cache := m.NewCache(chunkThreshold)
	if _, err := m.Prefill(big, seqPositions(chunkThreshold, 0), cache); err != nil {
		t.Fatal(err)
	}
	if cache.Len() != chunkThreshold {
		t.Fatalf("cache len %d", cache.Len())
	}
	// Bad token / position rejected by the chunked path too.
	if _, err := m.Prefill(make([]int, chunkThreshold), append(make([]int, chunkThreshold-1), m.Cfg.MaxSeq), m.NewCache(0)); err == nil {
		t.Fatal("expected position error")
	}
	bad := randTokens(r, chunkThreshold)
	bad[3] = testVocab + 1
	if _, err := m.Prefill(bad, seqPositions(chunkThreshold, 0), m.NewCache(0)); err == nil {
		t.Fatal("expected vocab error")
	}
}

// TestChunkedGenerationEndToEnd: a full Complete() through the chunked
// path generates exactly what the sequential path generates.
func TestChunkedGenerationEndToEnd(t *testing.T) {
	r := rng.New(701)
	for _, cfg := range allConfigs(701) {
		m := MustNew(cfg)
		toks := randTokens(r, 40)

		seqCache := m.NewCache(64)
		seqLogits, err := m.prefillSequential(context.Background(), toks, seqPositions(40, 0), seqCache)
		if err != nil {
			t.Fatal(err)
		}
		seqGen, err := m.Generate(context.Background(), seqCache, seqLogits, GenerateOpts{MaxTokens: 8})
		if err != nil {
			t.Fatal(err)
		}

		out, _, err := m.Complete(toks, GenerateOpts{MaxTokens: 8})
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(seqGen) {
			t.Fatalf("%s: generation lengths differ (%d vs %d)", cfg.Name, len(out), len(seqGen))
		}
		for i := range out {
			if out[i] != seqGen[i] {
				t.Fatalf("%s: generations diverge at %d", cfg.Name, i)
			}
		}
	}
}

func BenchmarkPrefill256Sequential(b *testing.B) {
	m := MustNew(LlamaStyle(testVocab, 1))
	r := rng.New(1)
	toks := randTokens(r, 256)
	pos := seqPositions(256, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := m.NewCache(256)
		if _, err := m.prefillSequential(context.Background(), toks, pos, cache); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrefill256Chunked(b *testing.B) {
	m := MustNew(LlamaStyle(testVocab, 1))
	r := rng.New(1)
	toks := randTokens(r, 256)
	pos := seqPositions(256, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := m.NewCache(256)
		if _, err := m.prefillChunk(context.Background(), toks, pos, cache); err != nil {
			b.Fatal(err)
		}
	}
}
