package model

import (
	"fmt"
	"sync"

	"repro/internal/kvcache"
	"repro/internal/tensor"
)

// DecodeLane is one sequence's slot in a fused decode batch. It owns the
// pooled scratch the lane's forward passes run in, so a lane that decodes
// a whole reply through DecodeStepBatch allocates nothing per token —
// exactly the property the solo decode loop has. Acquire with
// NewDecodeLane, release with Close.
//
// A lane is not synchronized: it belongs to whichever goroutine is
// driving the batch (the continuous-batching scheduler, or a solo
// generation loop using itself as a batch of one).
type DecodeLane struct {
	m  *Model
	sc *scratch

	// per-step state, valid between a DecodeStepBatch call and the next
	err  error
	pos  int
	rows int  // rows to attend over this step (kv.Len() after AppendPos)
	skip bool // lane failed validation; excluded from the fused walk

	// multi-position state for DecodeStepBatchMulti: extra holds pooled
	// scratch for verify positions 1..k-1 (position 0 runs in sc, so a
	// batch of singletons costs exactly a DecodeStepBatch), mpos/mrows the
	// per-position query positions and attention row counts, mk the
	// position count of the lane's current step.
	extra []*scratch
	mpos  []int
	mrows []int
	mk    int
}

// NewDecodeLane acquires a lane backed by pooled scratch.
func (m *Model) NewDecodeLane() *DecodeLane {
	return &DecodeLane{m: m, sc: m.getScratch()}
}

// Close returns the lane's scratch to the model pool. The lane (and any
// logits it returned) must not be used afterwards. Closing twice is safe.
func (l *DecodeLane) Close() {
	if l.sc != nil {
		l.m.putScratch(l.sc)
		l.sc = nil
	}
	for _, sc := range l.extra {
		l.m.putScratch(sc)
	}
	l.extra = nil
}

// Logits returns the lane's next-token logits from the latest
// DecodeStepBatch call. The slice aliases lane scratch: it is valid until
// the lane's next step or Close, and must not be mutated.
func (l *DecodeLane) Logits() []float32 { return l.sc.lgOut }

// LogitsAt returns the next-token logits computed at verify position j of
// the latest DecodeStepBatchMulti call (LogitsAt(0) == Logits()). Same
// aliasing rules as Logits.
func (l *DecodeLane) LogitsAt(j int) []float32 { return l.scratchAt(j).lgOut }

// scratchAt maps a verify position to its scratch: position 0 is the
// lane's own, the rest come from the extra pool.
func (l *DecodeLane) scratchAt(j int) *scratch {
	if j == 0 {
		return l.sc
	}
	return l.extra[j-1]
}

// growMulti sizes the lane for a k-position step, acquiring extra pooled
// scratch on first use and keeping it for the lane's lifetime so steady
// speculative decode allocates nothing per step.
func (l *DecodeLane) growMulti(k int) {
	for len(l.extra) < k-1 {
		l.extra = append(l.extra, l.m.getScratch())
	}
	if cap(l.mpos) < k {
		l.mpos = make([]int, k)
		l.mrows = make([]int, k)
	}
	l.mpos = l.mpos[:k]
	l.mrows = l.mrows[:k]
	l.mk = k
}

// Err reports the lane's failure from the latest DecodeStepBatch call,
// or nil. A failed lane appended nothing to its cache; other lanes in the
// same batch are unaffected.
func (l *DecodeLane) Err() error { return l.err }

// DecodeStepBatch runs one fused autoregressive step for every lane:
// lane i appends tokens[i] at positions[i] to kvs[i] and computes its
// next-token logits (read them with lanes[i].Logits()). The layer loop
// runs once for the whole batch — each layer's weights are walked a
// single time while N sequences pass through it — which is what lets a
// continuous-batching scheduler charge N concurrent generations one
// shared model traversal per token instead of N independent ones.
//
// Per-lane arithmetic is exactly the solo decodeStep sequence over the
// lane's own scratch, in the same order, so a lane's logits are
// bit-identical whether it steps solo or fused with any batch of
// neighbors. Lane failures (token out of vocab, position out of range)
// are reported per lane via Err() without disturbing the rest of the
// batch; the returned error is reserved for malformed calls.
func (m *Model) DecodeStepBatch(lanes []*DecodeLane, tokens, positions []int, kvs []kvcache.KV) error {
	if len(lanes) != len(tokens) || len(lanes) != len(positions) || len(lanes) != len(kvs) {
		return fmt.Errorf("model: DecodeStepBatch lanes=%d tokens=%d positions=%d kvs=%d",
			len(lanes), len(tokens), len(positions), len(kvs))
	}
	cfg := &m.Cfg

	// Embed + validate each lane and record its position before the layer
	// loop, mirroring the head of step(): after layer l every cache has
	// exactly len(Pos) rows.
	for i, ln := range lanes {
		ln.err = nil
		ln.skip = false
		tok, pos := tokens[i], positions[i]
		if tok < 0 || tok >= cfg.VocabSize {
			ln.err = fmt.Errorf("model: token %d out of vocab %d", tok, cfg.VocabSize)
			ln.skip = true
			continue
		}
		if pos < 0 || pos >= cfg.MaxSeq {
			ln.err = fmt.Errorf("model: position %d out of range [0,%d)", pos, cfg.MaxSeq)
			ln.skip = true
			continue
		}
		sc := ln.sc
		copy(sc.x, m.embedding.Row(tok))
		if cfg.PosEnc == Learned {
			tensor.Add(sc.x, m.posTable.Row(pos))
		}
		kvs[i].AppendPos(pos)
		ln.pos = pos
		ln.rows = kvs[i].Len()
	}

	// The fused walk. Lanes share nothing but the read-only weights, so
	// a multi-worker backend fans whole lanes out across goroutines —
	// each worker runs the full layer loop for a contiguous lane range,
	// which keeps every lane's per-layer operation sequence exactly
	// step()'s and therefore bit-identical to a solo decode.
	active := 0
	for _, ln := range lanes {
		if !ln.skip {
			active++
		}
	}
	if workers := m.bk.Workers(); workers > 1 && active >= 2 {
		if workers > len(lanes) {
			workers = len(lanes)
		}
		chunk := (len(lanes) + workers - 1) / workers
		var wg sync.WaitGroup
		for lo := 0; lo < len(lanes); lo += chunk {
			hi := lo + chunk
			if hi > len(lanes) {
				hi = len(lanes)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				m.stepLanes(lanes[lo:hi], kvs[lo:hi])
			}(lo, hi)
		}
		wg.Wait()
	} else {
		m.stepLanes(lanes, kvs)
	}

	// Output head, batched: the embedding (tied head) is the model's
	// largest matrix and decode streams all of it per token, so walking
	// each vocab row once for every lane — instead of once per lane — is
	// the fused step's main memory-bandwidth win. Per-lane dot products
	// are unchanged in value and order, preserving bit-identity.
	var dsts, hs [][]float32
	for _, ln := range lanes {
		if ln.skip {
			continue
		}
		sc := ln.sc
		if sc.lgOut == nil {
			sc.lgH = make([]float32, cfg.Dim)
			sc.lgOut = make([]float32, cfg.VocabSize)
		}
		m.norm(sc.lgH, sc.x, m.finalNormW, m.finalNormB)
		dsts = append(dsts, sc.lgOut)
		hs = append(hs, sc.lgH)
	}
	m.bk.OutputHead(dsts, m.embedding, hs)
	return nil
}

// stepLanes runs the fused layer walk — layer-outer, lane-inner — for a
// lane range. Within a lane the operation sequence is identical to
// step()'s layer loop; across lanes nothing is shared but the (read-only)
// weights, so neither lane order nor the worker split above can change
// any lane's numbers.
func (m *Model) stepLanes(lanes []*DecodeLane, kvs []kvcache.KV) {
	cfg := &m.Cfg
	for l := range m.layers {
		ly := &m.layers[l]
		for i, ln := range lanes {
			if ln.skip {
				continue
			}
			sc := ln.sc
			m.norm(sc.h, sc.x, ly.attnNormW, ly.attnNormB)

			m.bk.MatVecT(sc.q, ly.wq, sc.h)
			m.bk.MatVecT(sc.k, ly.wk, sc.h)
			m.bk.MatVecT(sc.v, ly.wv, sc.h)
			if cfg.PosEnc == RoPE {
				m.applyRope(sc.q, cfg.NHeads, ln.pos)
				m.applyRope(sc.k, cfg.NKVHeads, ln.pos)
			}
			kvs[i].AppendToken(l, sc.k, sc.v)

			m.attend(sc, kvs[i], l, ln.rows, ln.pos)

			m.bk.MatVecT(sc.proj, ly.wo, sc.attnOut)
			if cfg.ParallelAttn {
				tensor.Add(sc.x, sc.proj)
				m.ffn(sc, ly, sc.h)
			} else {
				tensor.Add(sc.x, sc.proj)
				m.norm(sc.h, sc.x, ly.ffnNormW, ly.ffnNormB)
				m.ffn(sc, ly, sc.h)
			}
		}
	}
}
