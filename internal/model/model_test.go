package model

import (
	"context"
	"math"
	"testing"

	"repro/internal/kvcache"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
)

const testVocab = tokenizer.WordBase + 512

func allConfigs(seed uint64) []Config {
	return []Config{
		LlamaStyle(testVocab, seed),
		LlamaStyleLarge(testVocab, seed),
		MPTStyle(testVocab, seed),
		FalconStyle(testVocab, seed),
		GPT2Style(testVocab, seed),
	}
}

func seqPositions(n, base int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = base + i
	}
	return p
}

func randTokens(r *rng.RNG, n int) []int {
	t := make([]int, n)
	for i := range t {
		t[i] = tokenizer.WordBase + r.Intn(testVocab-tokenizer.WordBase)
	}
	return t
}

func TestConfigValidate(t *testing.T) {
	bad := LlamaStyle(testVocab, 1)
	bad.NHeads = 3 // 64 % 3 != 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected invalid head split")
	}
	bad = LlamaStyle(testVocab, 1)
	bad.NKVHeads = 3 // 4 % 3 != 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected invalid GQA group")
	}
	bad = LlamaStyle(testVocab, 1)
	bad.VocabSize = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("expected invalid vocab")
	}
	for _, cfg := range allConfigs(1) {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("preset %s invalid: %v", cfg.Name, err)
		}
	}
}

func TestDeterministicWeights(t *testing.T) {
	a := MustNew(LlamaStyle(testVocab, 7))
	b := MustNew(LlamaStyle(testVocab, 7))
	if tensor.MaxAbsDiff(a.embedding.Data, b.embedding.Data) != 0 {
		t.Fatal("same seed produced different embeddings")
	}
	c := MustNew(LlamaStyle(testVocab, 8))
	if tensor.MaxAbsDiff(a.embedding.Data, c.embedding.Data) == 0 {
		t.Fatal("different seeds produced identical embeddings")
	}
}

func TestPrefillProducesFiniteLogits(t *testing.T) {
	r := rng.New(11)
	for _, cfg := range allConfigs(3) {
		m := MustNew(cfg)
		toks := randTokens(r, 12)
		cache := m.NewCache(16)
		logits, err := m.Prefill(toks, seqPositions(12, 0), cache)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if len(logits) != cfg.VocabSize {
			t.Fatalf("%s: logits width %d", cfg.Name, len(logits))
		}
		for _, v := range logits {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: non-finite logit", cfg.Name)
			}
		}
		if cache.Len() != 12 {
			t.Fatalf("%s: cache len %d", cfg.Name, cache.Len())
		}
	}
}

// TestIncrementalPrefillMatchesBatch is the KV-cache correctness
// invariant (§2.2): computing a sequence one token at a time over a
// persistent cache must equal computing it in one prefill call.
func TestIncrementalPrefillMatchesBatch(t *testing.T) {
	r := rng.New(13)
	for _, cfg := range allConfigs(5) {
		m := MustNew(cfg)
		toks := randTokens(r, 10)
		pos := seqPositions(10, 0)

		batch := m.NewCache(10)
		batchLogits, err := m.Prefill(toks, pos, batch)
		if err != nil {
			t.Fatal(err)
		}

		inc := m.NewCache(10)
		var incLogits []float32
		for i := range toks {
			incLogits, err = m.Prefill(toks[i:i+1], pos[i:i+1], inc)
			if err != nil {
				t.Fatal(err)
			}
		}
		if d := tensor.MaxAbsDiff(batchLogits, incLogits); d > 1e-4 {
			t.Fatalf("%s: incremental vs batch logits differ by %v", cfg.Name, d)
		}
		for l := 0; l < cfg.NLayers; l++ {
			if d := tensor.MaxAbsDiff(batch.K[l], inc.K[l]); d > 1e-5 {
				t.Fatalf("%s: layer %d keys differ by %v", cfg.Name, l, d)
			}
		}
	}
}

// TestPrefixSharing: two prompts with an identical prefix can share the
// prefix's KV states (the paged-attention prefix-sharing baseline the
// paper generalizes).
func TestPrefixSharing(t *testing.T) {
	r := rng.New(17)
	for _, cfg := range allConfigs(9) {
		m := MustNew(cfg)
		prefix := randTokens(r, 8)
		suffix := randTokens(r, 4)

		full := m.NewCache(12)
		all := append(append([]int{}, prefix...), suffix...)
		fullLogits, err := m.Prefill(all, seqPositions(12, 0), full)
		if err != nil {
			t.Fatal(err)
		}

		shared := m.NewCache(12)
		if _, err := m.Prefill(prefix, seqPositions(8, 0), shared); err != nil {
			t.Fatal(err)
		}
		sharedLogits, err := m.Prefill(suffix, seqPositions(4, 8), shared)
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.MaxAbsDiff(fullLogits, sharedLogits); d > 1e-4 {
			t.Fatalf("%s: prefix sharing changed logits by %v", cfg.Name, d)
		}
	}
}

// TestPositionShiftInvariance verifies the property Prompt Cache's layout
// depends on (§3.3): for relative encodings (RoPE, ALiBi) the attention
// inside a segment is unchanged when the whole segment shifts to a new
// start position. Learned embeddings are expected NOT to have this
// property.
func TestPositionShiftInvariance(t *testing.T) {
	r := rng.New(19)
	for _, cfg := range allConfigs(21) {
		m := MustNew(cfg)
		toks := randTokens(r, 10)

		at0 := m.NewCache(10)
		logits0, err := m.Prefill(toks, seqPositions(10, 0), at0)
		if err != nil {
			t.Fatal(err)
		}
		at100 := m.NewCache(10)
		logits100, err := m.Prefill(toks, seqPositions(10, 100), at100)
		if err != nil {
			t.Fatal(err)
		}
		d := tensor.MaxAbsDiff(logits0, logits100)
		if cfg.PosEnc == Learned {
			if d < 1e-6 {
				t.Fatalf("%s: learned positions unexpectedly shift-invariant", cfg.Name)
			}
			continue
		}
		if d > 2e-4 {
			t.Fatalf("%s: shift changed logits by %v", cfg.Name, d)
		}
	}
}

// TestDiscontinuousPositions is the paper's core empirical finding:
// attention states with gaps in their position IDs are legal and preserve
// within-segment behaviour.
func TestDiscontinuousPositions(t *testing.T) {
	r := rng.New(23)
	for _, cfg := range allConfigs(31) {
		// Learned positions accept arbitrary IDs too — via table lookup.
		m := MustNew(cfg)
		toks := randTokens(r, 9)
		// Three segments at positions [0..2], [50..52], [200..202].
		pos := []int{0, 1, 2, 50, 51, 52, 200, 201, 202}
		cache := m.NewCache(9)
		logits, err := m.Prefill(toks, pos, cache)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		for _, v := range logits {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("%s: non-finite logits with gapped positions", cfg.Name)
			}
		}
		if got := cache.MaxPos(); got != 202 {
			t.Fatalf("%s: MaxPos = %d", cfg.Name, got)
		}
	}
}

func TestPositionOutOfRangeRejected(t *testing.T) {
	m := MustNew(LlamaStyle(testVocab, 2))
	cache := m.NewCache(1)
	if _, err := m.Prefill([]int{tokenizer.WordBase}, []int{m.Cfg.MaxSeq}, cache); err == nil {
		t.Fatal("expected position range error")
	}
	if _, err := m.Prefill([]int{tokenizer.WordBase}, []int{-1}, cache); err == nil {
		t.Fatal("expected negative position error")
	}
}

func TestTokenOutOfVocabRejected(t *testing.T) {
	m := MustNew(LlamaStyle(testVocab, 2))
	cache := m.NewCache(1)
	if _, err := m.Prefill([]int{testVocab}, []int{0}, cache); err == nil {
		t.Fatal("expected vocab range error")
	}
}

func TestPrefillArgMismatch(t *testing.T) {
	m := MustNew(LlamaStyle(testVocab, 2))
	if _, err := m.Prefill([]int{1, 2}, []int{0}, m.NewCache(2)); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := m.Prefill(nil, nil, m.NewCache(0)); err == nil {
		t.Fatal("expected empty prefill error")
	}
}

func TestGenerateDeterministicGreedy(t *testing.T) {
	r := rng.New(29)
	for _, cfg := range allConfigs(41) {
		m := MustNew(cfg)
		toks := randTokens(r, 6)
		out1, _, err := m.Complete(toks, GenerateOpts{MaxTokens: 8})
		if err != nil {
			t.Fatal(err)
		}
		out2, _, err := m.Complete(toks, GenerateOpts{MaxTokens: 8})
		if err != nil {
			t.Fatal(err)
		}
		if len(out1) != len(out2) {
			t.Fatalf("%s: nondeterministic greedy lengths", cfg.Name)
		}
		for i := range out1 {
			if out1[i] != out2[i] {
				t.Fatalf("%s: greedy generation nondeterministic", cfg.Name)
			}
		}
	}
}

func TestGenerateRespectsMaxTokens(t *testing.T) {
	m := MustNew(LlamaStyle(testVocab, 3))
	r := rng.New(31)
	out, _, err := m.Complete(randTokens(r, 4), GenerateOpts{MaxTokens: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) > 5 {
		t.Fatalf("generated %d > 5 tokens", len(out))
	}
}

func TestGenerateAdvancesPositions(t *testing.T) {
	m := MustNew(LlamaStyle(testVocab, 3))
	r := rng.New(37)
	toks := randTokens(r, 4)
	cache := m.NewCache(16)
	logits, err := m.Prefill(toks, []int{10, 11, 12, 13}, cache)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Generate(context.Background(), cache, logits, GenerateOpts{MaxTokens: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Skip("stopped immediately")
	}
	// Generated tokens continue after the max position.
	if cache.Pos[4] != 14 {
		t.Fatalf("first generated position = %d, want 14", cache.Pos[4])
	}
}

func TestTemperatureSamplerSeeded(t *testing.T) {
	logits := []float32{1, 2, 3, 2, 1}
	s1 := &TemperatureSampler{Temperature: 1, RNG: rng.New(5)}
	s2 := &TemperatureSampler{Temperature: 1, RNG: rng.New(5)}
	for i := 0; i < 20; i++ {
		if s1.Sample(logits) != s2.Sample(logits) {
			t.Fatal("seeded sampler nondeterministic")
		}
	}
	// Zero temperature degrades to greedy.
	s := &TemperatureSampler{Temperature: 0, RNG: rng.New(5)}
	if s.Sample(logits) != 2 {
		t.Fatal("T=0 should be argmax")
	}
}

func TestTopKSampler(t *testing.T) {
	logits := []float32{0.1, 5, 4, 0.2, 3}
	// T=0 degrades to argmax.
	s := &TopKSampler{K: 3, Temperature: 0, RNG: rng.New(1)}
	if got := s.Sample(logits); got != 1 {
		t.Fatalf("T=0 topk = %d", got)
	}
	// All samples land in the top-k set.
	s = &TopKSampler{K: 3, Temperature: 1, RNG: rng.New(2)}
	topSet := map[int]bool{1: true, 2: true, 4: true}
	for i := 0; i < 200; i++ {
		if got := s.Sample(logits); !topSet[got] {
			t.Fatalf("sample %d outside top-3", got)
		}
	}
	// Seeded determinism.
	a := &TopKSampler{K: 2, Temperature: 0.7, RNG: rng.New(9)}
	b := &TopKSampler{K: 2, Temperature: 0.7, RNG: rng.New(9)}
	for i := 0; i < 50; i++ {
		if a.Sample(logits) != b.Sample(logits) {
			t.Fatal("topk sampler nondeterministic")
		}
	}
	// K <= 0 or K > len falls back to the full distribution.
	s = &TopKSampler{K: 0, Temperature: 1, RNG: rng.New(3)}
	if got := s.Sample([]float32{1}); got != 0 {
		t.Fatalf("degenerate sample = %d", got)
	}
}

func TestRepetitionPenalty(t *testing.T) {
	// Greedy would loop on token 1 forever; the penalty must break the
	// loop once token 1 enters the window.
	logits := []float32{1, 5, 4.9, 0}
	rp := &RepetitionPenalty{Penalty: 2, Window: 4}
	first := rp.Sample(logits)
	if first != 1 {
		t.Fatalf("first = %d", first)
	}
	second := rp.Sample(logits)
	if second != 2 {
		t.Fatalf("second = %d, penalty should demote repeated token", second)
	}
	// Negative logits are made more negative.
	rp2 := &RepetitionPenalty{Penalty: 3, Window: 2}
	neg := []float32{-0.1, -5}
	if got := rp2.Sample(neg); got != 0 {
		t.Fatalf("neg first = %d", got)
	}
	if got := rp2.Sample(neg); got != 0 {
		// -0.1*3 = -0.3 still beats -5.
		t.Fatalf("neg second = %d", got)
	}
	// Penalty <= 1 is a no-op passthrough.
	rp3 := &RepetitionPenalty{Penalty: 1}
	if rp3.Sample(logits) != 1 || rp3.Sample(logits) != 1 {
		t.Fatal("penalty 1 should not alter greedy choice")
	}
	// Window bounds memory.
	rp4 := &RepetitionPenalty{Penalty: 2, Window: 1}
	rp4.Sample(logits)
	rp4.Sample(logits)
	if len(rp4.recent) != 1 {
		t.Fatalf("window not enforced: %d", len(rp4.recent))
	}
}

func TestGenerateWithRepetitionPenaltyVariesOutput(t *testing.T) {
	m := MustNew(LlamaStyle(testVocab, 95))
	r := rng.New(95)
	toks := randTokens(r, 8)
	plain, _, err := m.Complete(toks, GenerateOpts{MaxTokens: 10})
	if err != nil {
		t.Fatal(err)
	}
	penalized, _, err := m.Complete(toks, GenerateOpts{
		MaxTokens: 10,
		Sampler:   &RepetitionPenalty{Penalty: 1.8, Window: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	distinct := func(xs []int) int {
		set := map[int]bool{}
		for _, x := range xs {
			set[x] = true
		}
		return len(set)
	}
	if distinct(penalized) < distinct(plain) {
		t.Fatalf("penalty reduced diversity: %d vs %d distinct", distinct(penalized), distinct(plain))
	}
}

func TestGenerateStream(t *testing.T) {
	m := MustNew(LlamaStyle(testVocab, 91))
	r := rng.New(91)
	toks := randTokens(r, 6)
	cache := m.NewCache(32)
	logits, err := m.Prefill(toks, seqPositions(6, 0), cache)
	if err != nil {
		t.Fatal(err)
	}
	// Streamed tokens match non-streamed generation exactly.
	ref := cache.Clone()
	refLogits := append([]float32(nil), logits...)
	var streamed []int
	out, err := m.GenerateStream(context.Background(), cache, logits, GenerateOpts{MaxTokens: 6}, func(tok int) bool {
		streamed = append(streamed, tok)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(out) {
		t.Fatal("emit count != returned count")
	}
	plain, err := m.Generate(context.Background(), ref, refLogits, GenerateOpts{MaxTokens: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(out) {
		t.Fatalf("stream %d tokens, plain %d", len(out), len(plain))
	}
	for i := range plain {
		if plain[i] != out[i] {
			t.Fatal("stream and plain diverge")
		}
	}
	// Early stop via callback.
	cache2 := m.NewCache(32)
	logits2, err := m.Prefill(toks, seqPositions(6, 0), cache2)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	out2, err := m.GenerateStream(context.Background(), cache2, logits2, GenerateOpts{MaxTokens: 10}, func(int) bool {
		n++
		return n < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out2) != 2 {
		t.Fatalf("early stop produced %d tokens", len(out2))
	}
	// Nil callback rejected.
	if _, err := m.GenerateStream(context.Background(), cache2, logits2, GenerateOpts{}, nil); err == nil {
		t.Fatal("nil emit should error")
	}
}

func TestGenerateEmptyCacheRejected(t *testing.T) {
	m := MustNew(LlamaStyle(testVocab, 3))
	if _, err := m.Generate(context.Background(), m.NewCache(0), make([]float32, testVocab), GenerateOpts{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestBytesPerCachedToken(t *testing.T) {
	cfg := LlamaStyle(testVocab, 1)
	// layers * kvdim * 2 (K,V) * bytes
	want := int64(cfg.NLayers) * int64(cfg.KVDim()) * 2 * 2
	if got := cfg.BytesPerCachedToken(2); got != want {
		t.Fatalf("BytesPerCachedToken = %d, want %d", got, want)
	}
}

func TestGQAHeadsShareKV(t *testing.T) {
	// MQA (Falcon) has KVDim == HeadDim: one shared KV head.
	cfg := FalconStyle(testVocab, 1)
	if cfg.KVDim() != cfg.HeadDim() {
		t.Fatalf("MQA KVDim = %d, want %d", cfg.KVDim(), cfg.HeadDim())
	}
	// GQA (Llama) groups 2 query heads per kv head.
	lc := LlamaStyle(testVocab, 1)
	if lc.KVDim() != 2*lc.HeadDim() {
		t.Fatalf("GQA KVDim = %d", lc.KVDim())
	}
}

func TestConcatEquivalentToContiguousPrefill(t *testing.T) {
	// Building a cache by concatenating two independently-prefilled
	// halves (with correct positions and full cross-attention during the
	// second half) equals prefilling the whole sequence — when the second
	// half was prefilled *on top of* the first. This pins down the exact
	// semantics cached inference relies on.
	r := rng.New(41)
	cfg := LlamaStyle(testVocab, 43)
	m := MustNew(cfg)
	a := randTokens(r, 5)
	b := randTokens(r, 5)

	whole := m.NewCache(10)
	all := append(append([]int{}, a...), b...)
	wholeLogits, err := m.Prefill(all, seqPositions(10, 0), whole)
	if err != nil {
		t.Fatal(err)
	}

	first := m.NewCache(10)
	if _, err := m.Prefill(a, seqPositions(5, 0), first); err != nil {
		t.Fatal(err)
	}
	firstOnly := first.Slice(0, 5)
	rebuilt := kvcache.Concat(firstOnly)
	logits2, err := m.Prefill(b, seqPositions(5, 5), rebuilt)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.MaxAbsDiff(wholeLogits, logits2); d > 1e-4 {
		t.Fatalf("concat-rebuilt cache diverged by %v", d)
	}
}

func BenchmarkPrefill64Tokens(b *testing.B) {
	m := MustNew(LlamaStyle(testVocab, 1))
	r := rng.New(1)
	toks := randTokens(r, 64)
	pos := seqPositions(64, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache := m.NewCache(64)
		if _, err := m.Prefill(toks, pos, cache); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeStep(b *testing.B) {
	m := MustNew(LlamaStyle(testVocab, 1))
	r := rng.New(2)
	cache := m.NewCache(600)
	if _, err := m.Prefill(randTokens(r, 512), seqPositions(512, 0), cache); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snapshot := cache.Len()
		if _, err := m.Decode(tokenizer.WordBase+1, 512+i, cache); err != nil {
			b.Fatal(err)
		}
		cache.Truncate(snapshot)
	}
}
