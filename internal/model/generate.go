package model

import (
	"context"
	"fmt"

	"repro/internal/kvcache"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
)

// Sampler selects the next token from logits.
type Sampler interface {
	Sample(logits []float32) int
}

// GreedySampler picks the argmax token. The paper uses deterministic
// (greedy) sampling for all accuracy comparisons (§5.3) so baseline and
// cached runs are directly comparable; so do we.
type GreedySampler struct{}

// Sample returns the argmax token id.
func (GreedySampler) Sample(logits []float32) int { return tensor.ArgMax(logits) }

// TemperatureSampler draws from the softmax distribution at the given
// temperature using a seeded generator.
type TemperatureSampler struct {
	Temperature float32
	RNG         *rng.RNG
}

// Sample draws a token proportional to exp(logit/T).
func (s *TemperatureSampler) Sample(logits []float32) int {
	t := s.Temperature
	if t <= 0 {
		return tensor.ArgMax(logits)
	}
	scaled := make([]float32, len(logits))
	for i, v := range logits {
		scaled[i] = v / t
	}
	tensor.Softmax(scaled)
	u := s.RNG.Float32()
	var acc float32
	for i, p := range scaled {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(scaled) - 1
}

// TopKSampler samples among the k highest logits at the given
// temperature, the truncation strategy most serving systems default to.
type TopKSampler struct {
	K           int
	Temperature float32
	RNG         *rng.RNG
}

// Sample draws from the renormalized top-k distribution.
func (s *TopKSampler) Sample(logits []float32) int {
	k := s.K
	if k <= 0 || k > len(logits) {
		k = len(logits)
	}
	// Partial selection of the top-k indices.
	idx := make([]int, len(logits))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if logits[idx[j]] > logits[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	top := make([]float32, k)
	t := s.Temperature
	if t <= 0 {
		return idx[0]
	}
	for i := 0; i < k; i++ {
		top[i] = logits[idx[i]] / t
	}
	tensor.Softmax(top)
	u := s.RNG.Float32()
	var acc float32
	for i, p := range top {
		acc += p
		if u < acc {
			return idx[i]
		}
	}
	return idx[k-1]
}

// RepetitionPenalty wraps a sampler, dividing the logits of
// recently-generated tokens by Penalty (> 1) before sampling — the
// standard mitigation for the token loops untrained and small models
// fall into.
type RepetitionPenalty struct {
	Inner   Sampler
	Penalty float32
	Window  int // how many recent tokens to penalize (0 = all)

	recent []int
}

// Sample applies the penalty and delegates to the inner sampler.
func (r *RepetitionPenalty) Sample(logits []float32) int {
	if r.Penalty <= 1 || len(r.recent) == 0 {
		tok := r.inner().Sample(logits)
		r.remember(tok)
		return tok
	}
	adjusted := make([]float32, len(logits))
	copy(adjusted, logits)
	for _, t := range r.recent {
		if t < 0 || t >= len(adjusted) {
			continue
		}
		if adjusted[t] > 0 {
			adjusted[t] /= r.Penalty
		} else {
			adjusted[t] *= r.Penalty
		}
	}
	tok := r.inner().Sample(adjusted)
	r.remember(tok)
	return tok
}

func (r *RepetitionPenalty) inner() Sampler {
	if r.Inner == nil {
		return GreedySampler{}
	}
	return r.Inner
}

func (r *RepetitionPenalty) remember(tok int) {
	r.recent = append(r.recent, tok)
	if r.Window > 0 && len(r.recent) > r.Window {
		r.recent = r.recent[len(r.recent)-r.Window:]
	}
}

// SpecPolicy selects whether a decode loop may use draft-and-verify
// speculative decoding. The default, SpecAuto, defers to the serving
// engine: speculation runs iff a draft source is configured there.
type SpecPolicy int

const (
	// SpecAuto speculates when the engine has a draft source.
	SpecAuto SpecPolicy = iota
	// SpecOn requests speculation (still a no-op without a draft source).
	SpecOn
	// SpecOff disables speculation for this generation.
	SpecOff
)

// SpecOpts carries per-generation speculation controls. Speculation never
// changes output — accepted drafts are exactly the tokens solo decode
// would have sampled — so these knobs trade verify-step width against
// wasted work, not quality.
type SpecOpts struct {
	Policy SpecPolicy
	// MaxDraft bounds draft tokens verified per fused step (default 4).
	MaxDraft int
}

// GenerateOpts controls autoregressive generation.
type GenerateOpts struct {
	MaxTokens int
	Sampler   Sampler
	// StopToken ends generation when sampled (defaults to tokenizer.EosID).
	StopToken int
	// Speculation configures draft-and-verify decode. The model's solo
	// loop ignores it; the continuous-batching scheduler in internal/core
	// honors it when a draft source is installed.
	Speculation SpecOpts
}

// Defaults fills unset fields with their documented defaults. Decode
// loops outside this package (the continuous-batching scheduler in
// internal/core) apply it so their per-request semantics match a solo
// Generate exactly.
func (o *GenerateOpts) Defaults() {
	if o.MaxTokens <= 0 {
		o.MaxTokens = 32
	}
	if o.Sampler == nil {
		o.Sampler = GreedySampler{}
	}
	if o.StopToken == 0 {
		o.StopToken = tokenizer.EosID
	}
	if o.Speculation.MaxDraft <= 0 {
		o.Speculation.MaxDraft = 4
	}
}

// Generate continues autoregressively from a prefilled cache and the
// final prefill logits, returning the generated token ids (stop token
// excluded). New tokens take consecutive positions after the cache's
// maximum position ID — the paper's observation that decode behaves
// identically under KV Cache and Prompt Cache (§3.4: "prompt modules are
// not employed beyond the initial token"). Cancelling ctx aborts between
// decode steps, returning ctx.Err() alongside the tokens produced so far.
func (m *Model) Generate(ctx context.Context, kv kvcache.KV, lastLogits []float32, opts GenerateOpts) ([]int, error) {
	return m.generate(ctx, kv, lastLogits, opts, nil)
}

// GenerateStream is Generate with per-token delivery: emit is called with
// each generated token id as soon as it is sampled; returning false stops
// generation early. The generated ids are also returned. Cancelling ctx
// aborts between decode steps with ctx.Err().
func (m *Model) GenerateStream(ctx context.Context, kv kvcache.KV, lastLogits []float32, opts GenerateOpts, emit func(token int) bool) ([]int, error) {
	if emit == nil {
		return nil, fmt.Errorf("model: GenerateStream requires an emit callback")
	}
	return m.generate(ctx, kv, lastLogits, opts, emit)
}

// generate is the solo decode loop, written as a single-lane client of
// the fused batch step: one DecodeLane, one-element batches. The
// continuous-batching scheduler in internal/core runs the same state
// machine over many lanes at once; keeping the solo path on the exact
// same step function is what makes "fused ≡ solo" a structural property
// rather than a test-enforced one.
func (m *Model) generate(ctx context.Context, kv kvcache.KV, lastLogits []float32, opts GenerateOpts, emit func(token int) bool) ([]int, error) {
	opts.Defaults()
	if kv.Len() == 0 {
		return nil, fmt.Errorf("model: Generate on empty cache")
	}
	if len(lastLogits) != m.Cfg.VocabSize {
		return nil, fmt.Errorf("model: logits width %d != vocab %d", len(lastLogits), m.Cfg.VocabSize)
	}
	var out []int
	lane := m.NewDecodeLane()
	defer lane.Close()
	lanes := []*DecodeLane{lane}
	toks, poss := make([]int, 1), make([]int, 1)
	kvs := []kvcache.KV{kv}
	logits := lastLogits
	pos := kv.MaxPos()
	for len(out) < opts.MaxTokens {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		next := opts.Sampler.Sample(logits)
		if next == opts.StopToken {
			break
		}
		out = append(out, next)
		if emit != nil && !emit(next) {
			break
		}
		pos++
		if pos >= m.Cfg.MaxSeq {
			break
		}
		toks[0], poss[0] = next, pos
		if err := m.DecodeStepBatch(lanes, toks, poss, kvs); err != nil {
			return out, err
		}
		if err := lane.Err(); err != nil {
			return out, err
		}
		logits = lane.Logits()
	}
	return out, nil
}

// Complete is the whole-prompt convenience path used as the paper's
// baseline: prefill tokens at positions 0..n-1 into a fresh cache, then
// generate. It returns the generated ids and the cache (for inspection).
func (m *Model) Complete(tokens []int, opts GenerateOpts) ([]int, *kvcache.Cache, error) {
	if len(tokens) == 0 {
		return nil, nil, fmt.Errorf("model: Complete with no tokens")
	}
	positions := make([]int, len(tokens))
	for i := range positions {
		positions[i] = i
	}
	cache := m.NewCache(len(tokens) + opts.MaxTokens)
	logits, err := m.Prefill(tokens, positions, cache)
	if err != nil {
		return nil, nil, err
	}
	out, err := m.Generate(context.Background(), cache, logits, opts)
	return out, cache, err
}
