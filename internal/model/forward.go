package model

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/kvcache"
	"repro/internal/tensor"
)

func cos(x float64) float64    { return math.Cos(x) }
func sin(x float64) float64    { return math.Sin(x) }
func pow(b, e float64) float64 { return math.Pow(b, e) }

// NewCache returns an empty KV cache shaped for this model, reserving
// capacity for capTokens tokens.
func (m *Model) NewCache(capTokens int) *kvcache.Cache {
	return kvcache.New(m.Cfg.NLayers, m.Cfg.KVDim(), capTokens)
}

// NewSeq returns an empty segmented KV view shaped for this model,
// reserving tail capacity for tailCap tokens.
func (m *Model) NewSeq(tailCap int) *kvcache.Seq {
	return kvcache.NewSeq(m.Cfg.NLayers, m.Cfg.KVDim(), tailCap)
}

// scratch holds per-forward-pass temporaries so the token loop does not
// allocate. One scratch per goroutine; Model itself stays read-only.
type scratch struct {
	x, h, attnOut, proj []float32
	q, k, v             []float32
	ffn1, ffn3          []float32
	scores              []float32
	segs                []kvcache.Segment
	// lgH/lgOut back logitsInto during decode loops, so repeated decode
	// steps reuse one vocab-wide buffer instead of allocating per token.
	// Lazily sized: prefills compute logits once and never need them.
	lgH, lgOut []float32
}

func (m *Model) newScratch() *scratch {
	d := m.Cfg.Dim
	return &scratch{
		x: make([]float32, d), h: make([]float32, d),
		attnOut: make([]float32, d), proj: make([]float32, d),
		q: make([]float32, d), k: make([]float32, m.Cfg.KVDim()), v: make([]float32, m.Cfg.KVDim()),
		ffn1: make([]float32, m.Cfg.FFNDim), ffn3: make([]float32, m.Cfg.FFNDim),
	}
}

// getScratch takes a scratch from the model's pool (grown buffers —
// scores, segment lists, logits — carry over), falling back to a fresh
// one. Steady-state serving allocates no per-request scratch at all.
func (m *Model) getScratch() *scratch {
	if v := m.scratchPool.Get(); v != nil {
		return v.(*scratch)
	}
	return m.newScratch()
}

func (m *Model) putScratch(sc *scratch) {
	// Segments alias module K/V buffers; a pooled stale reference would
	// keep an evicted module's multi-MB backing arrays reachable. Clear
	// the full capacity — AppendSegments reuses slots without zeroing.
	clear(sc.segs[:cap(sc.segs)])
	sc.segs = sc.segs[:0]
	m.scratchPool.Put(sc)
}

// Prefill runs the forward pass over tokens with the given explicit
// position IDs, appending each token's key/value states to kv and
// returning the logits of the final token. Attention for token i spans
// everything already in kv plus tokens 0..i of this call — exactly the
// KV-cache contract (§2.2), generalized to arbitrary position IDs (§3.3).
//
// Encoding a prompt module is Prefill into an empty cache (confining
// attention to the module span); serving a prompt is Prefill of the
// uncached suffix into a segmented view over the cached module states
// (§3.4), which never copies the cached rows.
func (m *Model) Prefill(tokens, positions []int, kv kvcache.KV) ([]float32, error) {
	return m.PrefillCtx(context.Background(), tokens, positions, kv)
}

// PrefillCtx is Prefill with cancellation: ctx is checked between tokens
// on the sequential path and between layers on the chunked path, so a
// long prefill aborts mid-flight instead of running to completion. On
// cancellation the cache may hold a partial prefix; callers either
// discard it or Truncate back to the pre-call length.
func (m *Model) PrefillCtx(ctx context.Context, tokens, positions []int, kv kvcache.KV) ([]float32, error) {
	if len(tokens) != len(positions) {
		return nil, fmt.Errorf("model: %d tokens but %d positions", len(tokens), len(positions))
	}
	if len(tokens) == 0 {
		return nil, fmt.Errorf("model: empty prefill")
	}
	if m.PrefillProbe != nil {
		m.PrefillProbe(+1)
		defer m.PrefillProbe(-1)
	}
	if len(tokens) >= chunkThreshold {
		return m.prefillChunk(ctx, tokens, positions, kv)
	}
	return m.prefillSequential(ctx, tokens, positions, kv)
}

// prefillSequential is the reference per-token path; prefillChunk must
// agree with it (tested bit-close).
func (m *Model) prefillSequential(ctx context.Context, tokens, positions []int, kv kvcache.KV) ([]float32, error) {
	sc := m.getScratch()
	defer m.putScratch(sc)
	var logits []float32
	for i, tok := range tokens {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := m.step(tok, positions[i], kv, sc); err != nil {
			return nil, err
		}
		if i == len(tokens)-1 {
			logits = m.logits(sc.x)
		}
	}
	return logits, nil
}

// Decode runs one autoregressive step: it appends token at position pos to
// kv and returns the next-token logits. The returned slice is freshly
// allocated; decode loops that can reuse buffers go through a DecodeLane
// and DecodeStepBatch.
func (m *Model) Decode(token, pos int, kv kvcache.KV) ([]float32, error) {
	sc := m.getScratch()
	defer m.putScratch(sc)
	if err := m.step(token, pos, kv, sc); err != nil {
		return nil, err
	}
	return m.logits(sc.x), nil
}

// step processes a single token through every layer, appending its KV
// states to kv. After step returns, sc.x holds the final hidden state
// (pre final-norm; logits() applies it).
func (m *Model) step(token, pos int, kv kvcache.KV, sc *scratch) error {
	cfg := &m.Cfg
	if token < 0 || token >= cfg.VocabSize {
		return fmt.Errorf("model: token %d out of vocab %d", token, cfg.VocabSize)
	}
	if pos < 0 || pos >= cfg.MaxSeq {
		return fmt.Errorf("model: position %d out of range [0,%d)", pos, cfg.MaxSeq)
	}
	copy(sc.x, m.embedding.Row(token))
	if cfg.PosEnc == Learned {
		tensor.Add(sc.x, m.posTable.Row(pos))
	}

	// The token's position is recorded before the layer loop; each layer
	// appends its K/V rows, so after layer l the cache's layer-l buffers
	// have exactly len(Pos) rows.
	kv.AppendPos(pos)
	n := kv.Len() // rows to attend over at each layer, including self

	for l := range m.layers {
		ly := &m.layers[l]
		m.norm(sc.h, sc.x, ly.attnNormW, ly.attnNormB)

		matVecT(sc.q, ly.wq, sc.h)
		matVecT(sc.k, ly.wk, sc.h)
		matVecT(sc.v, ly.wv, sc.h)
		if cfg.PosEnc == RoPE {
			m.applyRope(sc.q, cfg.NHeads, pos)
			m.applyRope(sc.k, cfg.NKVHeads, pos)
		}
		kv.AppendToken(l, sc.k, sc.v)

		m.attend(sc, kv, l, n, pos)

		matVecT(sc.proj, ly.wo, sc.attnOut)
		if cfg.ParallelAttn {
			// Falcon block: x = x + attn(h) + ffn(h), same normed input.
			tensor.Add(sc.x, sc.proj)
			m.ffn(sc, ly, sc.h)
		} else {
			tensor.Add(sc.x, sc.proj)
			m.norm(sc.h, sc.x, ly.ffnNormW, ly.ffnNormB)
			m.ffn(sc, ly, sc.h)
		}
	}
	return nil
}

// attend computes multi-head attention for the newest cache row (index
// n-1, at position qPos) over rows [0, n) of layer l, writing the merged
// heads to sc.attnOut. It walks the view's contiguous segments rather
// than fetching rows one at a time through the KV interface, so a
// segmented Seq attends as fast as a flat cache.
func (m *Model) attend(sc *scratch, kv kvcache.KV, l, n, qPos int) {
	cfg := &m.Cfg
	hd := cfg.HeadDim()
	width := cfg.KVDim()
	group := cfg.NHeads / cfg.NKVHeads
	invSqrt := float32(1 / math.Sqrt(float64(hd)))
	if cap(sc.scores) < n {
		// Headroom: decode grows n by one per step; sizing exactly would
		// reallocate the score buffer every token of every reply.
		sc.scores = make([]float32, n+256)
	}
	scores := sc.scores[:n]
	sc.segs = kv.AppendSegments(sc.segs[:0], l, n)

	for h := 0; h < cfg.NHeads; h++ {
		kvh := h / group
		base := kvh * hd
		qh := sc.q[h*hd : (h+1)*hd]
		off := 0
		for _, seg := range sc.segs {
			for j, p := range seg.Pos {
				row := j * width
				s := tensor.Dot(qh, seg.K[row+base:row+base+hd]) * invSqrt
				if cfg.PosEnc == ALiBi {
					// Bias from explicit position IDs (§4.2): the classic
					// -slope·distance, where distance uses the recorded
					// positions, not array indices, so module gaps behave
					// like the paper's "white space".
					dist := qPos - p
					if dist < 0 {
						dist = 0
					}
					s -= m.alibiSlope[h] * float32(dist)
				}
				scores[off+j] = s
			}
			off += len(seg.Pos)
		}
		tensor.Softmax(scores)
		out := sc.attnOut[h*hd : (h+1)*hd]
		for i := range out {
			out[i] = 0
		}
		off = 0
		for _, seg := range sc.segs {
			for j := range seg.Pos {
				w := scores[off+j]
				if w == 0 {
					continue
				}
				row := j * width
				vh := seg.V[row+base : row+base+hd]
				for i := range out {
					out[i] += w * vh[i]
				}
			}
			off += len(seg.Pos)
		}
	}
}

// ffn applies the feed-forward block to h and adds it into sc.x.
func (m *Model) ffn(sc *scratch, ly *layer, h []float32) {
	matVecT(sc.ffn1, ly.w1, h)
	switch m.Cfg.Act {
	case SwiGLU:
		tensor.SiLU(sc.ffn1)
		matVecT(sc.ffn3, ly.w3, h)
		tensor.Mul(sc.ffn1, sc.ffn3)
	case GELU:
		tensor.GELU(sc.ffn1)
	}
	matVecT(sc.proj, ly.w2, sc.ffn1)
	tensor.Add(sc.x, sc.proj)
}

// applyRope rotates each head's (even, odd) pairs by the position's
// precomputed angle from the lookup tables.
func (m *Model) applyRope(vec []float32, nHeads, pos int) {
	hd := m.Cfg.HeadDim()
	half := hd / 2
	cosRow := m.ropeCos.Row(pos)
	sinRow := m.ropeSin.Row(pos)
	for h := 0; h < nHeads; h++ {
		base := h * hd
		for f := 0; f < half; f++ {
			c, s := cosRow[f], sinRow[f]
			a, b := vec[base+2*f], vec[base+2*f+1]
			vec[base+2*f] = a*c - b*s
			vec[base+2*f+1] = a*s + b*c
		}
	}
}

// norm applies the configured normalization.
func (m *Model) norm(dst, x, w, b []float32) {
	switch m.Cfg.Norm {
	case RMSNorm:
		tensor.RMSNorm(dst, x, w, 1e-5)
	case LayerNorm:
		tensor.LayerNorm(dst, x, w, b, 1e-5)
	}
}

// logits applies the final norm and the tied output head into fresh
// slices — for results that outlive the forward pass (prefill returns,
// the public Decode). Loops use logitsInto with scratch-owned buffers.
func (m *Model) logits(x []float32) []float32 {
	h := make([]float32, len(x))
	out := make([]float32, m.Cfg.VocabSize)
	m.logitsInto(out, h, x)
	return out
}

// logitsParallelThreshold is the multiply-add count (vocab × dim) above
// which the output head shards across workers, and the minimum work one
// shard must carry. Decode calls logitsInto once per generated token, so
// the bar is set where a goroutine spawn+join (~µs) is small next to the
// shard's arithmetic, not at tensor.MatMul's finer-grained 64×64.
const logitsParallelThreshold = 32 * 1024

// logitsInto applies the final norm (using h, len Dim) and writes the
// output-head logits into dst (len VocabSize). The vocab scan shards
// across workers above a size threshold: each worker owns a disjoint
// dst range, so no synchronization beyond the join is needed.
func (m *Model) logitsInto(dst, h, x []float32) {
	m.norm(h, x, m.finalNormW, m.finalNormB)
	vocab := m.Cfg.VocabSize
	workers := runtime.GOMAXPROCS(0)
	if vocab*m.Cfg.Dim < logitsParallelThreshold || workers <= 1 {
		m.logitsRange(dst, h, 0, vocab)
		return
	}
	// Bound spawn overhead: every shard must carry at least a threshold's
	// worth of dot-product work, so per-token goroutines never outnumber
	// the work they fan out.
	if maxW := vocab * m.Cfg.Dim / logitsParallelThreshold; workers > maxW {
		workers = maxW
	}
	chunk := (vocab + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < vocab; lo += chunk {
		hi := lo + chunk
		if hi > vocab {
			hi = vocab
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			m.logitsRange(dst, h, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// logitsRange computes dst[t] for t in [lo, hi).
func (m *Model) logitsRange(dst, h []float32, lo, hi int) {
	for t := lo; t < hi; t++ {
		dst[t] = tensor.Dot(m.embedding.Row(t), h)
	}
}

// logitsBatch computes the output head for several already-normed hidden
// states at once (dsts[k][t] = embedding[t] · hs[k]), sharding the vocab
// scan as logitsInto does. Walking each embedding row once for the whole
// batch is what makes a fused decode step cheaper than N solo steps:
// every lane's dot product is the same operation in the same order as
// solo, so values are bit-identical — only the row traffic is shared.
func (m *Model) logitsBatch(dsts, hs [][]float32) {
	if len(hs) == 0 {
		return
	}
	vocab := m.Cfg.VocabSize
	workers := runtime.GOMAXPROCS(0)
	if vocab*m.Cfg.Dim*len(hs) < logitsParallelThreshold || workers <= 1 {
		m.logitsRangeBatch(dsts, hs, 0, vocab)
		return
	}
	if maxW := vocab * m.Cfg.Dim * len(hs) / logitsParallelThreshold; workers > maxW {
		workers = maxW
	}
	chunk := (vocab + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < vocab; lo += chunk {
		hi := lo + chunk
		if hi > vocab {
			hi = vocab
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			m.logitsRangeBatch(dsts, hs, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// logitsRangeBatch computes dsts[k][t] for t in [lo, hi) and every lane
// k, reading each embedding row exactly once. Lanes go through the
// widest batched dot kernel that fits (4/2/1): per element the row loads
// and index arithmetic amortize over the group, which is where the fused
// step beats N solo steps even when every matrix is cache-resident.
func (m *Model) logitsRangeBatch(dsts, hs [][]float32, lo, hi int) {
	k := 0
	for ; k+4 <= len(hs); k += 4 {
		d0, d1, d2, d3 := dsts[k], dsts[k+1], dsts[k+2], dsts[k+3]
		h0, h1, h2, h3 := hs[k], hs[k+1], hs[k+2], hs[k+3]
		for t := lo; t < hi; t++ {
			row := m.embedding.Row(t)
			d0[t], d1[t], d2[t], d3[t] = tensor.Dot4(row, h0, h1, h2, h3)
		}
	}
	if k+2 <= len(hs) {
		d0, d1 := dsts[k], dsts[k+1]
		h0, h1 := hs[k], hs[k+1]
		for t := lo; t < hi; t++ {
			row := m.embedding.Row(t)
			d0[t], d1[t] = tensor.Dot2(row, h0, h1)
		}
		k += 2
	}
	if k < len(hs) {
		m.logitsRange(dsts[k], hs[k], lo, hi)
	}
}

// matVecT computes dst = W^T · h for W stored as (in × out):
// dst[j] = Σ_i W[i][j] · h[i].
func matVecT(dst []float32, w *tensor.Matrix, h []float32) {
	if len(h) != w.Rows || len(dst) != w.Cols {
		panic(fmt.Sprintf("model: matVecT shapes W=%dx%d h=%d dst=%d", w.Rows, w.Cols, len(h), len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i, hv := range h {
		if hv == 0 {
			continue
		}
		row := w.Row(i)
		for j, wv := range row {
			dst[j] += hv * wv
		}
	}
}
