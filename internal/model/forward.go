package model

import (
	"context"
	"fmt"
	"math"

	"repro/internal/kvcache"
	"repro/internal/tensor"
)

func cos(x float64) float64    { return math.Cos(x) }
func sin(x float64) float64    { return math.Sin(x) }
func pow(b, e float64) float64 { return math.Pow(b, e) }

// NewCache returns an empty KV cache shaped for this model, reserving
// capacity for capTokens tokens.
func (m *Model) NewCache(capTokens int) *kvcache.Cache {
	return kvcache.New(m.Cfg.NLayers, m.Cfg.KVDim(), capTokens)
}

// NewSeq returns an empty segmented KV view shaped for this model,
// reserving tail capacity for tailCap tokens.
func (m *Model) NewSeq(tailCap int) *kvcache.Seq {
	return kvcache.NewSeq(m.Cfg.NLayers, m.Cfg.KVDim(), tailCap)
}

// scratch holds per-forward-pass temporaries so the token loop does not
// allocate. One scratch per goroutine; Model itself stays read-only.
type scratch struct {
	x, h, attnOut, proj []float32
	q, k, v             []float32
	ffn1, ffn3          []float32
	scores              []float32
	segs                []kvcache.Segment
	spans               []tensor.Span
	// qMat/outMat are reusable 1-row matrix headers over q and attnOut,
	// and att the reusable argument block, so the per-token attention
	// dispatch through the backend interface allocates nothing.
	qMat, outMat tensor.Matrix
	qPos         [1]int
	att          tensor.AttendArgs
	// lgH/lgOut back logitsInto during decode loops, so repeated decode
	// steps reuse one vocab-wide buffer instead of allocating per token.
	// Lazily sized: prefills compute logits once and never need them.
	lgH, lgOut []float32
	// dst1/hs1 are 1-lane output-head headers for the solo decode path.
	dst1, hs1 [1][]float32
}

func (m *Model) newScratch() *scratch {
	d := m.Cfg.Dim
	sc := &scratch{
		x: make([]float32, d), h: make([]float32, d),
		attnOut: make([]float32, d), proj: make([]float32, d),
		q: make([]float32, d), k: make([]float32, m.Cfg.KVDim()), v: make([]float32, m.Cfg.KVDim()),
		ffn1: make([]float32, m.Cfg.FFNDim), ffn3: make([]float32, m.Cfg.FFNDim),
	}
	sc.qMat = tensor.Matrix{Rows: 1, Cols: d, Data: sc.q}
	sc.outMat = tensor.Matrix{Rows: 1, Cols: d, Data: sc.attnOut}
	return sc
}

// getScratch takes a scratch from the model's pool (grown buffers —
// scores, segment lists, logits — carry over), falling back to a fresh
// one. Steady-state serving allocates no per-request scratch at all.
func (m *Model) getScratch() *scratch {
	if v := m.scratchPool.Get(); v != nil {
		return v.(*scratch)
	}
	return m.newScratch()
}

func (m *Model) putScratch(sc *scratch) {
	// Segments (and the spans mirroring them) alias module K/V buffers;
	// a pooled stale reference would keep an evicted module's multi-MB
	// backing arrays reachable. Clear the full capacity —
	// AppendSegments reuses slots without zeroing.
	clear(sc.segs[:cap(sc.segs)])
	sc.segs = sc.segs[:0]
	clear(sc.spans[:cap(sc.spans)])
	sc.spans = sc.spans[:0]
	sc.att = tensor.AttendArgs{}
	m.scratchPool.Put(sc)
}

// Prefill runs the forward pass over tokens with the given explicit
// position IDs, appending each token's key/value states to kv and
// returning the logits of the final token. Attention for token i spans
// everything already in kv plus tokens 0..i of this call — exactly the
// KV-cache contract (§2.2), generalized to arbitrary position IDs (§3.3).
//
// Encoding a prompt module is Prefill into an empty cache (confining
// attention to the module span); serving a prompt is Prefill of the
// uncached suffix into a segmented view over the cached module states
// (§3.4), which never copies the cached rows.
func (m *Model) Prefill(tokens, positions []int, kv kvcache.KV) ([]float32, error) {
	return m.PrefillCtx(context.Background(), tokens, positions, kv)
}

// PrefillCtx is Prefill with cancellation: ctx is checked between tokens
// on the sequential path and between layers on the chunked path, so a
// long prefill aborts mid-flight instead of running to completion. On
// cancellation the cache may hold a partial prefix; callers either
// discard it or Truncate back to the pre-call length.
func (m *Model) PrefillCtx(ctx context.Context, tokens, positions []int, kv kvcache.KV) ([]float32, error) {
	if len(tokens) != len(positions) {
		return nil, fmt.Errorf("model: %d tokens but %d positions", len(tokens), len(positions))
	}
	if len(tokens) == 0 {
		return nil, fmt.Errorf("model: empty prefill")
	}
	if m.PrefillProbe != nil {
		m.PrefillProbe(+1)
		defer m.PrefillProbe(-1)
	}
	if len(tokens) >= chunkThreshold {
		return m.prefillChunk(ctx, tokens, positions, kv)
	}
	return m.prefillSequential(ctx, tokens, positions, kv)
}

// prefillSequential is the reference per-token path; prefillChunk must
// agree with it (tested bit-close).
func (m *Model) prefillSequential(ctx context.Context, tokens, positions []int, kv kvcache.KV) ([]float32, error) {
	sc := m.getScratch()
	defer m.putScratch(sc)
	var logits []float32
	for i, tok := range tokens {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := m.step(tok, positions[i], kv, sc); err != nil {
			return nil, err
		}
		if i == len(tokens)-1 {
			logits = m.logits(sc.x)
		}
	}
	return logits, nil
}

// Decode runs one autoregressive step: it appends token at position pos to
// kv and returns the next-token logits. The returned slice is freshly
// allocated; decode loops that can reuse buffers go through a DecodeLane
// and DecodeStepBatch.
func (m *Model) Decode(token, pos int, kv kvcache.KV) ([]float32, error) {
	sc := m.getScratch()
	defer m.putScratch(sc)
	if err := m.step(token, pos, kv, sc); err != nil {
		return nil, err
	}
	return m.logits(sc.x), nil
}

// step processes a single token through every layer, appending its KV
// states to kv. After step returns, sc.x holds the final hidden state
// (pre final-norm; logits() applies it).
func (m *Model) step(token, pos int, kv kvcache.KV, sc *scratch) error {
	cfg := &m.Cfg
	if token < 0 || token >= cfg.VocabSize {
		return fmt.Errorf("model: token %d out of vocab %d", token, cfg.VocabSize)
	}
	if pos < 0 || pos >= cfg.MaxSeq {
		return fmt.Errorf("model: position %d out of range [0,%d)", pos, cfg.MaxSeq)
	}
	copy(sc.x, m.embedding.Row(token))
	if cfg.PosEnc == Learned {
		tensor.Add(sc.x, m.posTable.Row(pos))
	}

	// The token's position is recorded before the layer loop; each layer
	// appends its K/V rows, so after layer l the cache's layer-l buffers
	// have exactly len(Pos) rows.
	kv.AppendPos(pos)
	n := kv.Len() // rows to attend over at each layer, including self

	for l := range m.layers {
		ly := &m.layers[l]
		m.norm(sc.h, sc.x, ly.attnNormW, ly.attnNormB)

		m.bk.MatVecT(sc.q, ly.wq, sc.h)
		m.bk.MatVecT(sc.k, ly.wk, sc.h)
		m.bk.MatVecT(sc.v, ly.wv, sc.h)
		if cfg.PosEnc == RoPE {
			m.applyRope(sc.q, cfg.NHeads, pos)
			m.applyRope(sc.k, cfg.NKVHeads, pos)
		}
		kv.AppendToken(l, sc.k, sc.v)

		m.attend(sc, kv, l, n, pos)

		m.bk.MatVecT(sc.proj, ly.wo, sc.attnOut)
		if cfg.ParallelAttn {
			// Falcon block: x = x + attn(h) + ffn(h), same normed input.
			tensor.Add(sc.x, sc.proj)
			m.ffn(sc, ly, sc.h)
		} else {
			tensor.Add(sc.x, sc.proj)
			m.norm(sc.h, sc.x, ly.ffnNormW, ly.ffnNormB)
			m.ffn(sc, ly, sc.h)
		}
	}
	return nil
}

// attend computes multi-head attention for the newest cache row (index
// n-1, at position qPos) over rows [0, n) of layer l, writing the merged
// heads to sc.attnOut. It walks the view's contiguous segments rather
// than fetching rows one at a time through the KV interface, so a
// segmented Seq attends as fast as a flat cache. The arithmetic is the
// backend's AttendRowBlock kernel, called as the 1-token block whose
// causal bound covers the whole cache.
func (m *Model) attend(sc *scratch, kv kvcache.KV, l, n, qPos int) {
	cfg := &m.Cfg
	if cap(sc.scores) < n {
		// Headroom: decode grows n by one per step; sizing exactly would
		// reallocate the score buffer every token of every reply.
		sc.scores = make([]float32, n+256)
	}
	sc.segs = kv.AppendSegments(sc.segs[:0], l, n)
	sc.spans = sc.spans[:0]
	for _, seg := range sc.segs {
		sc.spans = append(sc.spans, tensor.Span{K: seg.K, V: seg.V, Pos: seg.Pos})
	}
	sc.qPos[0] = qPos
	sc.att = tensor.AttendArgs{
		Q: &sc.qMat, Out: &sc.outMat,
		Spans: sc.spans, Past: n - 1, Positions: sc.qPos[:],
		NHeads: cfg.NHeads, Group: cfg.NHeads / cfg.NKVHeads,
		HeadDim: cfg.HeadDim(), Width: cfg.KVDim(),
		InvSqrt:     float32(1 / math.Sqrt(float64(cfg.HeadDim()))),
		AlibiSlopes: m.alibiSlope, // nil unless ALiBi
		Scores:      sc.scores[:n],
	}
	m.bk.AttendRowBlock(&sc.att)
}

// ffn applies the feed-forward block to h and adds it into sc.x.
func (m *Model) ffn(sc *scratch, ly *layer, h []float32) {
	m.bk.MatVecT(sc.ffn1, ly.w1, h)
	switch m.Cfg.Act {
	case SwiGLU:
		m.bk.SiLU(sc.ffn1)
		m.bk.MatVecT(sc.ffn3, ly.w3, h)
		tensor.Mul(sc.ffn1, sc.ffn3)
	case GELU:
		m.bk.GELU(sc.ffn1)
	}
	m.bk.MatVecT(sc.proj, ly.w2, sc.ffn1)
	tensor.Add(sc.x, sc.proj)
}

// applyRope rotates each head's (even, odd) pairs by the position's
// precomputed angle from the lookup tables.
func (m *Model) applyRope(vec []float32, nHeads, pos int) {
	hd := m.Cfg.HeadDim()
	half := hd / 2
	cosRow := m.ropeCos.Row(pos)
	sinRow := m.ropeSin.Row(pos)
	for h := 0; h < nHeads; h++ {
		base := h * hd
		for f := 0; f < half; f++ {
			c, s := cosRow[f], sinRow[f]
			a, b := vec[base+2*f], vec[base+2*f+1]
			vec[base+2*f] = a*c - b*s
			vec[base+2*f+1] = a*s + b*c
		}
	}
}

// norm applies the configured normalization.
func (m *Model) norm(dst, x, w, b []float32) {
	switch m.Cfg.Norm {
	case RMSNorm:
		m.bk.RMSNorm(dst, x, w, 1e-5)
	case LayerNorm:
		m.bk.LayerNorm(dst, x, w, b, 1e-5)
	}
}

// logits applies the final norm and the tied output head into fresh
// slices — for results that outlive the forward pass (prefill returns,
// the public Decode). Loops use logitsInto with scratch-owned buffers.
func (m *Model) logits(x []float32) []float32 {
	h := make([]float32, len(x))
	out := make([]float32, m.Cfg.VocabSize)
	m.logitsInto(out, h, x)
	return out
}

// logitsInto applies the final norm (using h, len Dim) and writes the
// output-head logits into dst (len VocabSize) through the backend's
// OutputHead kernel — the parallel backend shards the vocab scan into
// disjoint dst ranges, the scalar backend walks it sequentially; either
// way each logit is the same ascending-index dot product.
func (m *Model) logitsInto(dst, h, x []float32) {
	m.norm(h, x, m.finalNormW, m.finalNormB)
	m.bk.OutputHead([][]float32{dst}, m.embedding, [][]float32{h})
}
