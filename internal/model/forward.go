package model

import (
	"context"
	"fmt"
	"math"

	"repro/internal/kvcache"
	"repro/internal/tensor"
)

func cos(x float64) float64    { return math.Cos(x) }
func sin(x float64) float64    { return math.Sin(x) }
func pow(b, e float64) float64 { return math.Pow(b, e) }

// NewCache returns an empty KV cache shaped for this model, reserving
// capacity for capTokens tokens.
func (m *Model) NewCache(capTokens int) *kvcache.Cache {
	return kvcache.New(m.Cfg.NLayers, m.Cfg.KVDim(), capTokens)
}

// scratch holds per-forward-pass temporaries so the token loop does not
// allocate. One scratch per goroutine; Model itself stays read-only.
type scratch struct {
	x, h, attnOut, proj []float32
	q, k, v             []float32
	ffn1, ffn3          []float32
	scores              []float32
}

func (m *Model) newScratch() *scratch {
	d := m.Cfg.Dim
	return &scratch{
		x: make([]float32, d), h: make([]float32, d),
		attnOut: make([]float32, d), proj: make([]float32, d),
		q: make([]float32, d), k: make([]float32, m.Cfg.KVDim()), v: make([]float32, m.Cfg.KVDim()),
		ffn1: make([]float32, m.Cfg.FFNDim), ffn3: make([]float32, m.Cfg.FFNDim),
	}
}

// Prefill runs the forward pass over tokens with the given explicit
// position IDs, appending each token's key/value states to cache and
// returning the logits of the final token. Attention for token i spans
// everything already in cache plus tokens 0..i of this call — exactly the
// KV-cache contract (§2.2), generalized to arbitrary position IDs (§3.3).
//
// Encoding a prompt module is Prefill into an empty cache (confining
// attention to the module span); serving a prompt is Prefill of the
// uncached suffix into the concatenated module states (§3.4).
func (m *Model) Prefill(tokens, positions []int, cache *kvcache.Cache) ([]float32, error) {
	return m.PrefillCtx(context.Background(), tokens, positions, cache)
}

// PrefillCtx is Prefill with cancellation: ctx is checked between tokens
// on the sequential path and between layers on the chunked path, so a
// long prefill aborts mid-flight instead of running to completion. On
// cancellation the cache may hold a partial prefix; callers either
// discard it or Truncate back to the pre-call length.
func (m *Model) PrefillCtx(ctx context.Context, tokens, positions []int, cache *kvcache.Cache) ([]float32, error) {
	if len(tokens) != len(positions) {
		return nil, fmt.Errorf("model: %d tokens but %d positions", len(tokens), len(positions))
	}
	if len(tokens) == 0 {
		return nil, fmt.Errorf("model: empty prefill")
	}
	if m.PrefillProbe != nil {
		m.PrefillProbe(+1)
		defer m.PrefillProbe(-1)
	}
	if len(tokens) >= chunkThreshold {
		return m.prefillChunk(ctx, tokens, positions, cache)
	}
	return m.prefillSequential(ctx, tokens, positions, cache)
}

// prefillSequential is the reference per-token path; prefillChunk must
// agree with it (tested bit-close).
func (m *Model) prefillSequential(ctx context.Context, tokens, positions []int, cache *kvcache.Cache) ([]float32, error) {
	sc := m.newScratch()
	var logits []float32
	for i, tok := range tokens {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := m.step(tok, positions[i], cache, sc); err != nil {
			return nil, err
		}
		if i == len(tokens)-1 {
			logits = m.logits(sc.x)
		}
	}
	return logits, nil
}

// Decode runs one autoregressive step: it appends token at position pos to
// the cache and returns the next-token logits.
func (m *Model) Decode(token, pos int, cache *kvcache.Cache) ([]float32, error) {
	sc := m.newScratch()
	if err := m.step(token, pos, cache, sc); err != nil {
		return nil, err
	}
	return m.logits(sc.x), nil
}

// step processes a single token through every layer, appending its KV
// states to cache. After step returns, sc.x holds the final hidden state
// (pre final-norm; logits() applies it).
func (m *Model) step(token, pos int, cache *kvcache.Cache, sc *scratch) error {
	cfg := &m.Cfg
	if token < 0 || token >= cfg.VocabSize {
		return fmt.Errorf("model: token %d out of vocab %d", token, cfg.VocabSize)
	}
	if pos < 0 || pos >= cfg.MaxSeq {
		return fmt.Errorf("model: position %d out of range [0,%d)", pos, cfg.MaxSeq)
	}
	copy(sc.x, m.embedding.Row(token))
	if cfg.PosEnc == Learned {
		tensor.Add(sc.x, m.posTable.Row(pos))
	}

	// The token's position is recorded before the layer loop; each layer
	// appends its K/V rows, so after layer l the cache's layer-l buffers
	// have exactly len(Pos) rows.
	cache.AppendPos(pos)
	n := cache.Len() // rows to attend over at each layer, including self

	for l := range m.layers {
		ly := &m.layers[l]
		m.norm(sc.h, sc.x, ly.attnNormW, ly.attnNormB)

		matVecT(sc.q, ly.wq, sc.h)
		matVecT(sc.k, ly.wk, sc.h)
		matVecT(sc.v, ly.wv, sc.h)
		if cfg.PosEnc == RoPE {
			m.applyRope(sc.q, cfg.NHeads, pos)
			m.applyRope(sc.k, cfg.NKVHeads, pos)
		}
		cache.AppendToken(l, sc.k, sc.v)

		m.attend(sc, cache, l, n)

		matVecT(sc.proj, ly.wo, sc.attnOut)
		if cfg.ParallelAttn {
			// Falcon block: x = x + attn(h) + ffn(h), same normed input.
			tensor.Add(sc.x, sc.proj)
			m.ffn(sc, ly, sc.h)
		} else {
			tensor.Add(sc.x, sc.proj)
			m.norm(sc.h, sc.x, ly.ffnNormW, ly.ffnNormB)
			m.ffn(sc, ly, sc.h)
		}
	}
	return nil
}

// attend computes multi-head attention for the newest cache row (index
// n-1) over rows [0, n) of layer l, writing the merged heads to sc.attnOut.
func (m *Model) attend(sc *scratch, cache *kvcache.Cache, l, n int) {
	cfg := &m.Cfg
	hd := cfg.HeadDim()
	group := cfg.NHeads / cfg.NKVHeads
	invSqrt := float32(1 / math.Sqrt(float64(hd)))
	if cap(sc.scores) < n {
		sc.scores = make([]float32, n)
	}
	scores := sc.scores[:n]
	qPos := cache.Pos[n-1]

	for h := 0; h < cfg.NHeads; h++ {
		kvh := h / group
		qh := sc.q[h*hd : (h+1)*hd]
		for j := 0; j < n; j++ {
			krow := cache.KeyRow(l, j)
			s := tensor.Dot(qh, krow[kvh*hd:(kvh+1)*hd]) * invSqrt
			if cfg.PosEnc == ALiBi {
				// Bias from explicit position IDs (§4.2): the classic
				// -slope·distance, where distance uses the recorded
				// positions, not array indices, so module gaps behave
				// like the paper's "white space".
				dist := qPos - cache.Pos[j]
				if dist < 0 {
					dist = 0
				}
				s -= m.alibiSlope[h] * float32(dist)
			}
			scores[j] = s
		}
		tensor.Softmax(scores)
		out := sc.attnOut[h*hd : (h+1)*hd]
		for i := range out {
			out[i] = 0
		}
		for j := 0; j < n; j++ {
			w := scores[j]
			if w == 0 {
				continue
			}
			vrow := cache.ValueRow(l, j)
			vh := vrow[kvh*hd : (kvh+1)*hd]
			for i := range out {
				out[i] += w * vh[i]
			}
		}
	}
}

// ffn applies the feed-forward block to h and adds it into sc.x.
func (m *Model) ffn(sc *scratch, ly *layer, h []float32) {
	matVecT(sc.ffn1, ly.w1, h)
	switch m.Cfg.Act {
	case SwiGLU:
		tensor.SiLU(sc.ffn1)
		matVecT(sc.ffn3, ly.w3, h)
		tensor.Mul(sc.ffn1, sc.ffn3)
	case GELU:
		tensor.GELU(sc.ffn1)
	}
	matVecT(sc.proj, ly.w2, sc.ffn1)
	tensor.Add(sc.x, sc.proj)
}

// applyRope rotates each head's (even, odd) pairs by the position's
// precomputed angle from the lookup tables.
func (m *Model) applyRope(vec []float32, nHeads, pos int) {
	hd := m.Cfg.HeadDim()
	half := hd / 2
	cosRow := m.ropeCos.Row(pos)
	sinRow := m.ropeSin.Row(pos)
	for h := 0; h < nHeads; h++ {
		base := h * hd
		for f := 0; f < half; f++ {
			c, s := cosRow[f], sinRow[f]
			a, b := vec[base+2*f], vec[base+2*f+1]
			vec[base+2*f] = a*c - b*s
			vec[base+2*f+1] = a*s + b*c
		}
	}
}

// norm applies the configured normalization.
func (m *Model) norm(dst, x, w, b []float32) {
	switch m.Cfg.Norm {
	case RMSNorm:
		tensor.RMSNorm(dst, x, w, 1e-5)
	case LayerNorm:
		tensor.LayerNorm(dst, x, w, b, 1e-5)
	}
}

// logits applies the final norm and the tied output head.
func (m *Model) logits(x []float32) []float32 {
	h := make([]float32, len(x))
	m.norm(h, x, m.finalNormW, m.finalNormB)
	out := make([]float32, m.Cfg.VocabSize)
	for t := 0; t < m.Cfg.VocabSize; t++ {
		out[t] = tensor.Dot(m.embedding.Row(t), h)
	}
	return out
}

// matVecT computes dst = W^T · h for W stored as (in × out):
// dst[j] = Σ_i W[i][j] · h[i].
func matVecT(dst []float32, w *tensor.Matrix, h []float32) {
	if len(h) != w.Rows || len(dst) != w.Cols {
		panic(fmt.Sprintf("model: matVecT shapes W=%dx%d h=%d dst=%d", w.Rows, w.Cols, len(h), len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i, hv := range h {
		if hv == 0 {
			continue
		}
		row := w.Row(i)
		for j, wv := range row {
			dst[j] += hv * wv
		}
	}
}
