package model

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/kvcache"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
)

// TestCausality: cached states of a prefix must be bit-identical no
// matter what follows it — the property (§2.2) that makes KV caches, and
// hence Prompt Cache, sound for causal LMs.
func TestCausality(t *testing.T) {
	r := rng.New(61)
	for _, cfg := range allConfigs(71) {
		m := MustNew(cfg)
		prefix := randTokens(r, 6)
		suffixA := randTokens(r, 3)
		suffixB := randTokens(r, 3)

		run := func(suffix []int) *cacheSnapshot {
			all := append(append([]int{}, prefix...), suffix...)
			cache := m.NewCache(len(all))
			if _, err := m.Prefill(all, seqPositions(len(all), 0), cache); err != nil {
				t.Fatal(err)
			}
			return snapshotPrefix(cache, len(prefix))
		}
		a := run(suffixA)
		b := run(suffixB)
		for l := range a.k {
			if tensor.MaxAbsDiff(a.k[l], b.k[l]) != 0 || tensor.MaxAbsDiff(a.v[l], b.v[l]) != 0 {
				t.Fatalf("%s: prefix states depend on the future (layer %d)", cfg.Name, l)
			}
		}
	}
}

type cacheSnapshot struct{ k, v [][]float32 }

func snapshotPrefix(c *kvcache.Cache, n int) *cacheSnapshot {
	snap := &cacheSnapshot{}
	for l := 0; l < c.NLayers; l++ {
		var ks, vs []float32
		for i := 0; i < n; i++ {
			ks = append(ks, c.KeyRow(l, i)...)
			vs = append(vs, c.ValueRow(l, i)...)
		}
		snap.k = append(snap.k, ks)
		snap.v = append(snap.v, vs)
	}
	return snap
}

// TestGoldenLogits pins the forward pass numerically: for a fixed seed
// and input, the greedy continuation must never change. This guards the
// math (RoPE tables, norm epsilons, attention order) against accidental
// refactors; if a deliberate change breaks it, re-derive the constants
// with the printed actual values.
func TestGoldenLogits(t *testing.T) {
	golden := map[string][]int{}
	for _, cfg := range allConfigs(424242) {
		m := MustNew(cfg)
		toks := []int{
			tokenizer.WordBase + 11, tokenizer.WordBase + 222,
			tokenizer.WordBase + 33, tokenizer.WordBase + 404,
		}
		out, _, err := m.Complete(toks, GenerateOpts{MaxTokens: 5})
		if err != nil {
			t.Fatal(err)
		}
		golden[cfg.Name] = out
	}
	// Second independent construction must reproduce exactly — under
	// every backend, since the backend contract says the choice can never
	// show up in outputs.
	for _, bk := range []tensor.Backend{tensor.Scalar(), tensor.NewParallel(4)} {
		for _, cfg := range allConfigs(424242) {
			m := MustNew(cfg)
			m.SetBackend(bk)
			toks := []int{
				tokenizer.WordBase + 11, tokenizer.WordBase + 222,
				tokenizer.WordBase + 33, tokenizer.WordBase + 404,
			}
			out, _, err := m.Complete(toks, GenerateOpts{MaxTokens: 5})
			if err != nil {
				t.Fatal(err)
			}
			want := golden[cfg.Name]
			if fmt.Sprint(out) != fmt.Sprint(want) {
				t.Fatalf("%s/%s: greedy continuation not reproducible: %v vs %v", cfg.Name, bk.Name(), out, want)
			}
		}
	}
}

// TestPrefillPropertyRandomized: random token/position sequences (sorted,
// in range) always produce finite logits and exact cache accounting, for
// every architecture.
func TestPrefillPropertyRandomized(t *testing.T) {
	cfgs := allConfigs(99)
	check := func(seed uint16) bool {
		rr := rng.New(uint64(seed))
		cfg := cfgs[int(seed)%len(cfgs)]
		m := MustNew(cfg)
		n := rr.IntRange(1, 12)
		toks := randTokens(rr, n)
		pos := make([]int, n)
		p := rr.Intn(50)
		for i := range pos {
			pos[i] = p
			p += 1 + rr.Intn(20) // strictly increasing with gaps
		}
		cache := m.NewCache(n)
		logits, err := m.Prefill(toks, pos, cache)
		if err != nil {
			return false
		}
		if cache.Len() != n {
			return false
		}
		for _, v := range logits {
			if v != v { // NaN
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
