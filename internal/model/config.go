// Package model implements a from-scratch decoder-only transformer
// inference engine with explicit position IDs, the substrate Prompt Cache
// runs on. It supports the three positional-encoding families the paper
// adapts in §4.2 — RoPE (Llama/Falcon), ALiBi (MPT/Bloom) and learned
// embedding tables (BERT/GPT-2) — plus grouped-query attention, RMS/layer
// normalization, SwiGLU/GELU feed-forwards and Falcon-style parallel
// attention, so each architecture family exercises its own adaptation
// path.
//
// Weights are deterministically seeded rather than trained: attention-state
// reuse is a property of the architecture, not the weights, so every
// correctness claim (cached ≡ recomputed, discontinuous positions, masking
// effects) is checked with real forward-pass math.
package model

import (
	"fmt"
	"sync"

	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/tokenizer"
)

// PosEncoding selects the positional-encoding family (§4.2).
type PosEncoding int

const (
	// RoPE rotates query/key pairs by a position-dependent angle
	// (Llama2, Falcon, CodeLlama).
	RoPE PosEncoding = iota
	// ALiBi adds a static distance-proportional bias to attention scores
	// (MPT, Bloom).
	ALiBi
	// Learned adds a looked-up position embedding to the token embedding
	// (BERT, GPT-2).
	Learned
)

func (p PosEncoding) String() string {
	switch p {
	case RoPE:
		return "rope"
	case ALiBi:
		return "alibi"
	case Learned:
		return "learned"
	}
	return fmt.Sprintf("PosEncoding(%d)", int(p))
}

// NormKind selects the normalization layer.
type NormKind int

const (
	// RMSNorm is root-mean-square normalization (Llama family).
	RMSNorm NormKind = iota
	// LayerNorm is standard layer normalization (MPT/GPT family).
	LayerNorm
)

// ActKind selects the feed-forward activation.
type ActKind int

const (
	// SwiGLU is the gated SiLU feed-forward (Llama family).
	SwiGLU ActKind = iota
	// GELU is the tanh-approximated GELU feed-forward (MPT/GPT family).
	GELU
)

// Config describes a transformer architecture.
type Config struct {
	Name      string
	VocabSize int
	Dim       int // model (hidden) dimension
	NLayers   int
	NHeads    int // query heads
	NKVHeads  int // key/value heads (== NHeads for MHA, 1 for MQA)
	FFNDim    int
	MaxSeq    int // maximum position ID + 1
	PosEnc    PosEncoding
	Norm      NormKind
	Act       ActKind
	// ParallelAttn computes attention and FFN from the same normed input
	// and sums both into the residual (Falcon-style block).
	ParallelAttn bool
	RopeTheta    float64
	Seed         uint64
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.VocabSize <= 0:
		return fmt.Errorf("model %q: VocabSize must be positive", c.Name)
	case c.Dim <= 0 || c.NLayers <= 0 || c.FFNDim <= 0 || c.MaxSeq <= 0:
		return fmt.Errorf("model %q: dimensions must be positive", c.Name)
	case c.NHeads <= 0 || c.Dim%c.NHeads != 0:
		return fmt.Errorf("model %q: Dim %d not divisible by NHeads %d", c.Name, c.Dim, c.NHeads)
	case c.NKVHeads <= 0 || c.NHeads%c.NKVHeads != 0:
		return fmt.Errorf("model %q: NHeads %d not divisible by NKVHeads %d", c.Name, c.NHeads, c.NKVHeads)
	case c.PosEnc == RoPE && (c.Dim/c.NHeads)%2 != 0:
		return fmt.Errorf("model %q: RoPE needs even head dim, got %d", c.Name, c.Dim/c.NHeads)
	}
	return nil
}

// HeadDim returns the per-head dimension.
func (c *Config) HeadDim() int { return c.Dim / c.NHeads }

// KVDim returns the flattened key/value width (NKVHeads × HeadDim).
func (c *Config) KVDim() int { return c.NKVHeads * c.HeadDim() }

// Test-scale architecture presets. Each mirrors the structural family of
// one of the paper's evaluation models (§4.2, §5.1); dimensions are sized
// for CPU-speed exactness tests, not capability.

// LlamaStyle returns a RoPE + RMSNorm + SwiGLU + GQA config (Llama2 family).
func LlamaStyle(vocab int, seed uint64) Config {
	return Config{
		Name: "llama-style", VocabSize: vocab,
		Dim: 64, NLayers: 4, NHeads: 4, NKVHeads: 2, FFNDim: 176,
		MaxSeq: 8192, PosEnc: RoPE, Norm: RMSNorm, Act: SwiGLU,
		RopeTheta: 10000, Seed: seed,
	}
}

// LlamaStyleLarge returns a deeper/wider Llama-style config, the stand-in
// for the 13B scale point in Table 1.
func LlamaStyleLarge(vocab int, seed uint64) Config {
	c := LlamaStyle(vocab, seed)
	c.Name = "llama-style-large"
	c.Dim, c.NLayers, c.NHeads, c.NKVHeads, c.FFNDim = 96, 6, 6, 3, 256
	return c
}

// MPTStyle returns an ALiBi + LayerNorm + GELU + MHA config (MPT family).
func MPTStyle(vocab int, seed uint64) Config {
	return Config{
		Name: "mpt-style", VocabSize: vocab,
		Dim: 64, NLayers: 4, NHeads: 4, NKVHeads: 4, FFNDim: 256,
		MaxSeq: 8192, PosEnc: ALiBi, Norm: LayerNorm, Act: GELU,
		Seed: seed,
	}
}

// FalconStyle returns a RoPE + LayerNorm + GELU + MQA + parallel-attention
// config (Falcon family).
func FalconStyle(vocab int, seed uint64) Config {
	return Config{
		Name: "falcon-style", VocabSize: vocab,
		Dim: 64, NLayers: 4, NHeads: 4, NKVHeads: 1, FFNDim: 256,
		MaxSeq: 8192, PosEnc: RoPE, Norm: LayerNorm, Act: GELU,
		ParallelAttn: true, RopeTheta: 10000, Seed: seed,
	}
}

// GPT2Style returns a learned-position + LayerNorm + GELU config
// (BERT/GPT-2 family, the "no adaptation needed" case of §4.2).
func GPT2Style(vocab int, seed uint64) Config {
	return Config{
		Name: "gpt2-style", VocabSize: vocab,
		Dim: 64, NLayers: 4, NHeads: 4, NKVHeads: 4, FFNDim: 256,
		MaxSeq: 8192, PosEnc: Learned, Norm: LayerNorm, Act: GELU,
		Seed: seed,
	}
}

// layer bundles one transformer block's weights.
type layer struct {
	attnNormW, attnNormB []float32
	ffnNormW, ffnNormB   []float32 // unused when ParallelAttn

	wq, wk, wv, wo *tensor.Matrix
	w1, w2, w3     *tensor.Matrix // w3 is the SwiGLU gate (nil for GELU)
}

// Model is an immutable transformer ready for inference. It is safe for
// concurrent use: forward passes write only into caller-owned caches and
// pooled scratch buffers, and no weight mutates after New returns.
// Distinct goroutines may Prefill/Decode/Generate simultaneously as long
// as each works on its own kvcache.KV — a flat *kvcache.Cache or a
// segmented *kvcache.Seq view; read-only view segments may be shared
// across goroutines freely.
type Model struct {
	Cfg Config

	// scratchPool recycles per-forward-pass temporaries across requests,
	// so steady-state prefill/decode allocates no scratch.
	scratchPool sync.Pool

	// PrefillProbe, when non-nil, is called with +1 as a prefill enters
	// the forward pass and -1 as it leaves (including error returns).
	// It exists for concurrency instrumentation — in-flight gauges in
	// metrics, overlap assertions in tests. Set it before serving
	// begins and do not change it afterwards; the probe itself must be
	// safe for concurrent calls.
	PrefillProbe func(delta int)

	embedding  *tensor.Matrix // vocab × dim; output head is tied
	posTable   *tensor.Matrix // maxSeq × dim, Learned only
	ropeCos    *tensor.Matrix // maxSeq × headDim/2, RoPE only (§4.2 lookup table)
	ropeSin    *tensor.Matrix
	alibiSlope []float32 // per query head, ALiBi only

	layers     []layer
	finalNormW []float32
	finalNormB []float32

	// bk is the kernel backend every forward pass dispatches through.
	// New sets it to tensor.Auto(); SetBackend overrides it. Backends are
	// bit-identical by contract, so the choice affects scheduling only.
	bk tensor.Backend
}

// SetBackend replaces the kernel backend (nil restores tensor.Auto()'s
// choice). Like PrefillProbe, this is a pre-serving knob: set it before
// any forward pass runs and do not change it while requests are in
// flight. All backends produce bit-identical outputs, so swapping
// between runs never invalidates cached KV state or golden logits.
func (m *Model) SetBackend(b tensor.Backend) {
	if b == nil {
		b = tensor.Auto()
	}
	m.bk = b
}

// Backend returns the kernel backend forward passes run on.
func (m *Model) Backend() tensor.Backend { return m.bk }

// New builds a model with deterministically seeded weights.
func New(cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{Cfg: cfg, bk: tensor.Auto()}
	root := rng.New(cfg.Seed)
	std := float32(0.06)

	initMat := func(label string, rows, cols int) *tensor.Matrix {
		mt := tensor.NewMatrix(rows, cols)
		rng.NewString(fmt.Sprintf("%s/%d/%s", cfg.Name, cfg.Seed, label)).FillNormal(mt.Data, std)
		return mt
	}
	ones := func(n int) []float32 {
		w := make([]float32, n)
		for i := range w {
			w[i] = 1
		}
		return w
	}

	m.embedding = initMat("embedding", cfg.VocabSize, cfg.Dim)
	switch cfg.PosEnc {
	case Learned:
		m.posTable = initMat("pos-table", cfg.MaxSeq, cfg.Dim)
	case RoPE:
		m.buildRopeTables()
	case ALiBi:
		m.buildAlibiSlopes()
	}

	kvDim := cfg.KVDim()
	m.layers = make([]layer, cfg.NLayers)
	for l := range m.layers {
		pre := fmt.Sprintf("layer%d/", l)
		ly := &m.layers[l]
		ly.attnNormW = ones(cfg.Dim)
		ly.attnNormB = make([]float32, cfg.Dim)
		ly.ffnNormW = ones(cfg.Dim)
		ly.ffnNormB = make([]float32, cfg.Dim)
		ly.wq = initMat(pre+"wq", cfg.Dim, cfg.Dim)
		ly.wk = initMat(pre+"wk", cfg.Dim, kvDim)
		ly.wv = initMat(pre+"wv", cfg.Dim, kvDim)
		ly.wo = initMat(pre+"wo", cfg.Dim, cfg.Dim)
		ly.w1 = initMat(pre+"w1", cfg.Dim, cfg.FFNDim)
		ly.w2 = initMat(pre+"w2", cfg.FFNDim, cfg.Dim)
		if cfg.Act == SwiGLU {
			ly.w3 = initMat(pre+"w3", cfg.Dim, cfg.FFNDim)
		}
	}
	m.finalNormW = ones(cfg.Dim)
	m.finalNormB = make([]float32, cfg.Dim)
	_ = root
	return m, nil
}

// MustNew is New but panics on configuration errors; for tests and presets.
func MustNew(cfg Config) *Model {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// buildRopeTables precomputes cos/sin per (position, frequency) pair. This
// is exactly the "lookup table for each rotation matrix, enabling
// retrieval based on position IDs" adaptation from §4.2 — discontinuous
// position IDs index the table directly.
func (m *Model) buildRopeTables() {
	hd := m.Cfg.HeadDim()
	half := hd / 2
	m.ropeCos = tensor.NewMatrix(m.Cfg.MaxSeq, half)
	m.ropeSin = tensor.NewMatrix(m.Cfg.MaxSeq, half)
	theta := m.Cfg.RopeTheta
	if theta == 0 {
		theta = 10000
	}
	for pos := 0; pos < m.Cfg.MaxSeq; pos++ {
		for f := 0; f < half; f++ {
			freq := 1.0 / pow(theta, float64(2*f)/float64(hd))
			angle := float64(pos) * freq
			m.ropeCos.Set(pos, f, float32(cos(angle)))
			m.ropeSin.Set(pos, f, float32(sin(angle)))
		}
	}
}

// buildAlibiSlopes assigns each query head the geometric slope sequence
// from the ALiBi paper: 2^(-8i/H) for head i of H. As in §4.2, the bias is
// computed from explicit position IDs so gaps are legal.
func (m *Model) buildAlibiSlopes() {
	h := m.Cfg.NHeads
	m.alibiSlope = make([]float32, h)
	for i := 0; i < h; i++ {
		m.alibiSlope[i] = float32(pow(2, -8*float64(i+1)/float64(h)))
	}
}

// BytesPerCachedToken returns the KV-cache footprint of one token in bytes
// at the given scalar width (2 = fp16 as in Table 2, 4 = this engine's
// fp32).
func (c *Config) BytesPerCachedToken(bytesPerScalar int) int64 {
	return int64(c.NLayers) * int64(c.KVDim()) * 2 * int64(bytesPerScalar)
}

// TokenizerFor returns a tokenizer sized for this model's vocabulary.
func (c *Config) TokenizerFor() *tokenizer.Tokenizer {
	return tokenizer.New(c.VocabSize)
}
